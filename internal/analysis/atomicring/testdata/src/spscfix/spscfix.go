// Package spscfix seeds SPSC field-access violations for the atomicring
// fixture suite, next to a correctly laid out ring that must stay silent.
package spscfix

import "sync/atomic"

// good is a correctly laid out SPSC ring: every atomic position sits behind
// its own cache-line pad, the payload fields are constructor-frozen, and the
// ends are touched only through sync/atomic methods.
//
//hepccl:spsc
type good struct {
	_    [64]byte
	head atomic.Uint64
	_    [64]byte
	tail atomic.Uint64
	_    [64]byte
	buf  []uint64 //hepccl:const
	mask uint64   //hepccl:const
}

// newGood is the constructor: //hepccl:const writes are legal only here.
func newGood(n int) *good {
	g := &good{}
	g.buf = make([]uint64, n)
	g.mask = uint64(n - 1)
	return g
}

func (g *good) push(v uint64) bool {
	h := g.head.Load()
	if h-g.tail.Load() == uint64(len(g.buf)) {
		return false
	}
	g.buf[h&g.mask] = v // element write through a const field: payload, allowed
	g.head.Store(h + 1)
	return true
}

// bad seeds one violation of each class.
//
//hepccl:spsc
type bad struct {
	head atomic.Uint64 // want `atomic field of SPSC struct bad is not preceded by a cache-line pad`
	pos  uint64
	buf  []uint64 //hepccl:const
}

func (b *bad) reset() {
	b.head = atomic.Uint64{} // want `atomic field bad.head overwritten with a plain assignment`
	b.pos = 0                // want `plain store to SPSC field bad.pos`
}

func (b *bad) load() uint64 {
	return b.pos // want `plain load of SPSC field bad.pos`
}

func (b *bad) bump() {
	b.pos++ // want `plain store to SPSC field bad.pos`
}

func (b *bad) grow(n int) {
	b.buf = make([]uint64, n) // want `//hepccl:const field bad.buf written outside a constructor`
}

// syncLoad is the escape hatch: a plain field passed as &b.pos directly to a
// sync/atomic call is fine.
func (b *bad) syncLoad() uint64 {
	return atomic.LoadUint64(&b.pos)
}
