package atomicring_test

import (
	"testing"

	"github.com/wustl-adapt/hepccl/internal/analysis/analysistest"
	"github.com/wustl-adapt/hepccl/internal/analysis/atomicring"
)

func TestAtomicRing(t *testing.T) {
	analysistest.Run(t, "testdata", atomicring.Analyzer, "spscfix")
}
