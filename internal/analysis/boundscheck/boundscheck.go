// Package boundscheck is the hot path's bounds-check-elimination proof: it
// parses the compiler's BCE and nil-check debug output (`go build
// -gcflags=-d=ssa/check_bce/debug=1,nil`) and flags any bounds or nil check
// the compiler retained inside a loop of a //hepccl:hotpath function. The
// paper's HLS pipeline gets II=1 only because every array access in the
// datapath is proven in range at synthesis time; the software analogue is
// that the fused decode, resolve sweep, and seam merge loops must compile to
// straight-line loads — a retained IsInBounds is a per-iteration compare and
// branch the profile pays for millions of times per second.
//
// Scope: only checks inside for/range loops of hot-closure functions count.
// Straight-line checks (entry guards, slice-header setup before a loop) are
// the mechanism BCE fixes use and are free by comparison. A retained check
// whose safety rests on an invariant the prover cannot see (parent[x] ≤ x,
// mask == len(buf)-1, value-dependent union-find indices) is exempted by a
// //hepccl:checked directive on the statement or loop, which must carry the
// invariant in its comment — the escape hatch is an argument, not a mute.
//
// Like escapecheck, this asks the compiler itself rather than re-deriving
// the prover's verdict from the AST, so it tracks the toolchain: a compiler
// upgrade that loses a BCE proof fails CI instead of silently regressing
// the serving floor. Unlike escapecheck it compiles with inlining on — the
// positions of retained checks survive inlining, and the shipped binary is
// the compilation being proven.
package boundscheck

import (
	"fmt"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"

	"github.com/wustl-adapt/hepccl/internal/analysis/framework"
	"github.com/wustl-adapt/hepccl/internal/analysis/hepcclmark"
	"github.com/wustl-adapt/hepccl/internal/analysis/load"
)

// Gcflags is the compiler debug configuration the check builds with:
// check_bce prints every retained IsInBounds/IsSliceInBounds, nil prints
// every generated nil check.
const Gcflags = "-d=ssa/check_bce/debug=1,nil"

// Build compiles the packages under root with bounds-check and nil-check
// diagnostics enabled and returns the combined compiler output. patterns
// defaults to ./... — fixture tests pass the single fixture directory.
func Build(root string, patterns ...string) (string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"build", "-gcflags=" + Gcflags}, patterns...)...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("boundscheck: go build -gcflags=%s: %w\n%s", Gcflags, err, out)
	}
	return string(out), nil
}

var checkLine = regexp.MustCompile(`(?m)^(.+\.go):(\d+):(\d+): (Found IsInBounds|Found IsSliceInBounds|generated nil check)$`)

// messages maps the compiler's wording to the diagnostic's.
var messages = map[string]string{
	"Found IsInBounds":      "bounds check retained",
	"Found IsSliceInBounds": "slice bounds check retained",
	"generated nil check":   "nil check retained",
}

// Check maps retained-check sites from compiler output onto loops inside the
// program's hot-path closure. root anchors the compiler's relative paths.
func Check(prog *load.Program, root, output string) []framework.Diagnostic {
	marks := hepcclmark.Collect(prog)
	hot := hepcclmark.ComputeHotSet(prog, marks)
	loops := hot.LoopRanges(prog.Fset)
	exempt := hot.MarkedRanges(prog.Fset, marks,
		hepcclmark.Coldpath, hepcclmark.Amortized, hepcclmark.Checked)

	var diags []framework.Diagnostic
	seen := map[string]bool{}
	for _, m := range checkLine.FindAllStringSubmatch(output, -1) {
		file, what := m[1], m[4]
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		var hf *hepcclmark.HotFunc
		for r, f := range loops {
			if r.File == file && r.Start <= line && line <= r.End {
				hf = f
				break
			}
		}
		if hf == nil {
			continue // outside every hot loop: straight-line or cold code
		}
		covered := marks.LineMarked(file, line, hepcclmark.Checked)
		for _, r := range exempt {
			if covered {
				break
			}
			covered = r.File == file && r.Start <= line && line <= r.End
		}
		if covered {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d:%s", file, line, col, what)
		if seen[key] {
			continue // inlined copies repeat the origin position per caller
		}
		seen[key] = true
		diags = append(diags, framework.Diagnostic{
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Analyzer: "boundscheck",
			Message: fmt.Sprintf("%s in a loop of hot path function %s; prove it away or justify with //hepccl:checked",
				messages[what], hf.Describe()),
		})
	}
	return diags
}
