module bcefix

go 1.24
