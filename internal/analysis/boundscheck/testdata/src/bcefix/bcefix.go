// Package bcefix seeds retained bounds and nil checks inside hot loops for
// the boundscheck fixture suite. Each // want line marks a check the
// compiler provably keeps; the Clean and Justified shapes must stay silent.
package bcefix

// Sum indexes under an externally supplied bound the prover cannot tie to
// the slice length, so every iteration re-checks.
//
//hepccl:hotpath
func Sum(s []int64, n int32) int64 {
	var t int64
	for i := int32(0); i < n; i++ {
		t += s[i] // want `bounds check retained`
	}
	return t
}

// Chase follows value-dependent indices: the inner read's index is loaded
// from the slice itself, unprovable without the forest invariant.
//
//hepccl:hotpath
func Chase(p []int32) {
	for i := range p {
		p[i] = p[p[i]] // want `bounds check retained`
	}
}

// Windows reslices by data-dependent offsets.
//
//hepccl:hotpath
func Windows(s []byte, offs []int) int {
	t := 0
	for _, o := range offs {
		w := s[o:] // want `slice bounds check retained`
		t += len(w)
	}
	return t
}

// big puts a field past the guard page, so dereferencing it needs an
// explicit nil test — the fault trick that elides most nil checks only
// covers small offsets.
type big struct {
	_ [1 << 13]byte
	v int64
}

// Deref dereferences pointers loaded per iteration, one nil check each.
//
//hepccl:hotpath
func Deref(ptrs []*big) int64 {
	var t int64
	for _, q := range ptrs {
		t += q.v // want `nil check retained`
	}
	return t
}

// Clean iterates the indexed slice itself; BCE removes every check and the
// analyzer must stay silent.
//
//hepccl:hotpath
func Clean(s []int64) int64 {
	var t int64
	for i := range s {
		t += s[i]
	}
	return t
}

// Justified retains the same value-dependent check as Chase, but carries the
// invariant the prover cannot see, so the directive exempts the loop.
//
//hepccl:hotpath
func Justified(p []int32) {
	// Invariant: p is a union-find forest built by appends of self-links,
	// so every stored value is a valid index: 0 <= p[x] <= x < len(p).
	//hepccl:checked
	for i := range p {
		p[i] = p[p[i]]
	}
}

// offPath retains checks but is outside the hot closure, so the analyzer
// ignores it.
func offPath(s []int64, n int) int64 {
	var t int64
	for i := 0; i < n; i++ {
		t += s[i]
	}
	return t
}

var _ = offPath
