package boundscheck_test

import (
	"path/filepath"
	"testing"

	"github.com/wustl-adapt/hepccl/internal/analysis/analysistest"
	"github.com/wustl-adapt/hepccl/internal/analysis/boundscheck"
	"github.com/wustl-adapt/hepccl/internal/analysis/load"
)

// TestBoundsCheck shells the real compiler over the fixture module (it has
// its own go.mod, invisible to the repo's builds under testdata) and matches
// the mapped diagnostics against the fixture's // want comments — the seeded
// violations prove the parse, the Clean/Justified shapes prove the silence.
func TestBoundsCheck(t *testing.T) {
	dir := filepath.Join("testdata", "src", "bcefix")
	out, err := boundscheck.Build(dir, ".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := load.LoadDir(dir, "bcefix")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	analysistest.Check(t, prog, boundscheck.Check(prog, dir, out))
}
