// Package framework is the minimal analyzer harness behind hepcclvet — the
// shape of golang.org/x/tools/go/analysis, reduced to what the hepccl
// invariant checkers need and implemented on the standard library only (the
// module takes no external dependencies). An Analyzer inspects a whole
// type-checked Program at once, so whole-module properties (the hot-path
// call closure, cross-package sentinel identity) need no fact plumbing.
package framework

import (
	"fmt"
	"go/token"
	"sort"

	"github.com/wustl-adapt/hepccl/internal/analysis/load"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output.
	Name string
	// Doc is the one-paragraph description shown by hepcclvet -help.
	Doc string
	// Run inspects the program and reports findings through the pass.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Pass carries one analyzer run over one program.
type Pass struct {
	Analyzer *Analyzer
	Prog     *load.Program
	report   func(Diagnostic)
}

// Fset returns the program's file set.
func (p *Pass) Fset() *token.FileSet { return p.Prog.Fset }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over prog and returns every diagnostic, sorted
// by position.
func Run(prog *load.Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Prog:     prog,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
