package adapt

import (
	"fmt"

	"github.com/wustl-adapt/hepccl/internal/design"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

// Per-channel processing stages of Fig 3. Each stage is a pure function so
// the pipeline stays testable; the dataflow composition and its cycle model
// live in pipeline.go.

// PedestalSubtract removes the baseline integral from a raw waveform
// integral. Results are clamped at zero: a downward noise fluctuation cannot
// represent negative light.
func PedestalSubtract(raw, pedestal int64) int64 {
	net := raw - pedestal
	if net < 0 {
		return 0
	}
	return net
}

// PhotonCount converts a pedestal-subtracted integral to photo-electron
// counts by rounded division with the single-p.e. gain.
func PhotonCount(net int64, gainADC int64) grid.Value {
	if gainADC <= 0 {
		return 0
	}
	return grid.Value((net + gainADC/2) / gainADC)
}

// ZeroSuppress forces counts at or below the threshold to zero; islands are
// then maximal connected regions of survivors.
func ZeroSuppress(pe grid.Value, threshold grid.Value) grid.Value {
	if pe <= threshold {
		return 0
	}
	return pe
}

// Merger fuses the zero-suppressed 16-channel outputs of the event's ASICs
// into one flat, event-wide channel array and the 16-wide Merge words the
// island-detection stage reads (§4.1).
type Merger struct {
	asics int
}

// NewMerger returns a merger expecting the given ASIC count per event.
func NewMerger(asics int) (*Merger, error) {
	if asics < 1 {
		return nil, fmt.Errorf("adapt: merger needs at least one ASIC, got %d", asics)
	}
	return &Merger{asics: asics}, nil
}

// ASICs returns the expected ASIC count.
func (m *Merger) ASICs() int { return m.asics }

// Channels returns the merged event width in channels.
func (m *Merger) Channels() int { return m.asics * ChannelsPerASIC }

// Merge assembles per-ASIC channel blocks into the flat event array.
// blocks must be indexed by ASIC id and complete.
func (m *Merger) Merge(blocks map[uint8][ChannelsPerASIC]grid.Value) ([]grid.Value, error) {
	if len(blocks) != m.asics {
		return nil, fmt.Errorf("adapt: merge got %d ASIC blocks, want %d", len(blocks), m.asics)
	}
	out := make([]grid.Value, m.Channels())
	for a := 0; a < m.asics; a++ {
		block, ok := blocks[uint8(a)]
		if !ok {
			return nil, fmt.Errorf("adapt: merge missing ASIC %d", a)
		}
		copy(out[a*ChannelsPerASIC:(a+1)*ChannelsPerASIC], block[:])
	}
	return out, nil
}

// Words converts a flat merged array into the 16-channel-wide FIFO words the
// 2D island-detection design consumes.
func Words(values []grid.Value) []design.Word {
	words := make([]design.Word, (len(values)+design.Channels-1)/design.Channels)
	for i, v := range values {
		words[i/design.Channels][i%design.Channels] = v
	}
	return words
}
