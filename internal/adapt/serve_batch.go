package adapt

import (
	"fmt"
	"unsafe"

	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/runccl"
)

// ServeBatch processes a batch of assembled events through the serving fast
// path, reusing one scratch arena (the pipeline's) across the whole batch.
// It is the primary serving entry point: internal/server workers drain their
// rings into it, and ServeEvent is the batch-of-1 degenerate case.
//
// On the default single-core run backend the batch is served batch-resident:
// one fused pass per event interleaves validation, integration, photon
// counting, and run extraction (each packet's samples are consumed while
// still in L1/L2, with no intermediate bitmap or merged image on the fast
// path), the runs of every event land in one flat arena where vertical
// adjacency is merged branch-free as they arrive, a single flat path-halving
// sweep then resolves the entire batch's union-find forest at once, and
// per-island statistics are scattered into the downlink records at batch
// end. Output is bit-identical to ServeEvent per event (FuzzBatchVsSingle
// enforces this three ways). The 1D, per-pixel, and tile-parallel backends
// serve per event; batch residency targets the many-small-events regime
// those backends are not in.
//
// events, recs, and errs must have equal length. Per-event failures are
// recorded in errs[i] (nil on success) and do not stop the batch — a bad
// event from one connection must not discard its shard-mates. It returns the
// number of events served successfully.
//
//hepccl:hotpath
func (p *Pipeline) ServeBatch(events [][]Packet, recs []EventRecord, errs []error) int {
	//hepccl:coldpath
	if len(recs) != len(events) || len(errs) != len(events) {
		panic("adapt: ServeBatch requires len(events) == len(recs) == len(errs)")
	}
	if p.runEngine == nil {
		ok := 0
		for i, ev := range events {
			if errs[i] = p.ServeEvent(ev, &recs[i]); errs[i] == nil {
				ok++
			}
		}
		return ok
	}
	sc := &p.serve
	//hepccl:amortized
	if sc.batch == nil {
		sc.batch = p.runEngine.NewBatch()
	}
	//hepccl:amortized
	if cap(sc.evIdx) < len(events) {
		sc.evIdx = make([]int32, len(events)+len(events)/2+8)
	}
	evIdx := sc.evIdx[:len(events)]
	b := sc.batch
	b.Reset()
	for i, ev := range events {
		errs[i] = nil
		b.BeginEvent()
		if !p.batchEventFused(ev, &recs[i], b) {
			// The inlined abort's reslices are bounded by the event-offset
			// fence: evOff entries never exceed the run arrays' lengths.
			//hepccl:checked
			b.AbortEvent()
			if err := p.batchEventRef(ev, &recs[i], b); err != nil {
				//hepccl:coldpath
				errs[i] = err
				evIdx[i] = -1
				continue
			}
		}
		evIdx[i] = int32(b.EndEvent())
	}
	b.Resolve()
	ok := 0
	for i := range events {
		if evIdx[i] < 0 {
			continue
		}
		// The inlined Islands prologue reslices its scratch to the event's
		// run count, which its amortized grow keeps within capacity.
		//hepccl:checked
		sc.islands = b.Islands(int(evIdx[i]), sc.islands[:0])
		// Inlined emitIslands reslices the record's island buffer to the
		// island count its amortized grow just guaranteed.
		//hepccl:checked
		emitIslands(sc.islands, &recs[i])
		ok++
	}
	return ok
}

// litCursor streams lit channels — in ascending flat order, as the fused
// decode discovers them — into maximal horizontal runs of the open batch
// event, folding each run's charge sum and column moment at photon-count
// time. A lit pixel extends the open run exactly when it is the next flat
// index on the same row; any gap or row change seals the run.
type litCursor struct {
	b      *runccl.Batch
	peds   []int64
	litRow []int32
	litCol []int32
	pcM    uint64
	pcMax  uint64
	gain   int64
	half   int64
	prevFl int32 // flat index of the previous lit pixel; -2 when no open run
	row    int32 // open run's row
	start  int32 // open run's start column
	end    int32 // open run's end column (exclusive)
	sum    int64
	colm   int64
}

// add photon-counts one above-threshold channel and extends or opens a run.
// The suppression compare already proved the channel lit (raw ≥ limit ⇔
// pe > threshold), so no zero-suppress re-check is needed — the same
// ADC-domain argument ServeEvent's lit pass relies on.
//
//hepccl:hotpath
func (c *litCursor) add(fl int32, raw int64) {
	if int(fl) >= len(c.litCol) {
		return // padded channel beyond the pixel array: never downlinked
	}
	// PhotonCount(net, gain) = (net + gain/2) / gain via the pipeline's magic
	// multiply, truncated through grid.Value exactly as the merged image
	// store would be. The multiply runs unconditionally (it cannot fault) and
	// the rare out-of-range numerator overwrites it via the out-of-line slow
	// division, keeping this body small enough to inline into the decode loop.
	num := raw - c.peds[fl] + c.half
	pe := grid.Value(uint64(num) * c.pcM >> 47)
	if uint64(num) >= c.pcMax {
		//hepccl:coldpath
		pe = c.slowPE(fl, raw)
	}
	v := int64(pe)
	col := c.litCol[fl]
	// fl == prevFl+1 with col ≠ 0 means the previous lit pixel was the
	// immediate raster predecessor on the same row (col 0 would be a row
	// wrap), so the open run extends without consulting the row table.
	if fl == c.prevFl+1 && col != 0 {
		c.end++
		c.sum += v
		c.colm += int64(col) * v
		c.prevFl = fl
		return
	}
	c.openRun(fl, col, v)
}

// slowPE is the exact-division fallback for numerators outside the magic
// multiply's proven range — unreachable for wire-representable samples, kept
// out of line so add stays inlinable.
//
//go:noinline
func (c *litCursor) slowPE(fl int32, raw int64) grid.Value {
	return PhotonCount(raw-c.peds[fl], c.gain)
}

// openRun seals the open run, if any, and opens a new one at fl — the
// run-boundary half of add, out of line so the extend half inlines.
//
//go:noinline
//hepccl:hotpath
func (c *litCursor) openRun(fl, col int32, v int64) {
	c.flush()
	c.row = c.litRow[fl]
	c.start, c.end = col, col+1
	c.sum = v
	c.colm = int64(col) * v
	c.prevFl = fl
}

// flush seals the open run, if any, into the batch.
//
//hepccl:hotpath
func (c *litCursor) flush() {
	if c.prevFl >= 0 {
		c.b.AddRun(c.row, c.start, c.end, c.sum, c.colm)
	}
}

// batchEventFused is the batched fast path for one event: a single pass over
// the packets fusing validation, integration + zero-suppression, photon
// counting, and run extraction, so each packet's 256 bytes of samples are
// read once and fully consumed — runs, charge sums, and column moments —
// while still in L1/L2. No merged image, lit list, or bitmap is
// materialized.
//
// It requires canonical packet order: packet i carries ASIC i with the
// event's id and sample geometry. Position equality subsumes checkEvent (no
// duplicates, no unknown ASICs, count already matched), and it makes lit
// channels arrive in ascending flat order — which is raster order — so runs
// build directly on the decode walk. Any deviation returns false with the
// open batch event left for the caller to abort; the reference route then
// reproduces checkEvent's exact errors or serves the event via the bitmap.
//
//hepccl:hotpath
func (p *Pipeline) batchEventFused(packets []Packet, rec *EventRecord, b *runccl.Batch) bool {
	//hepccl:coldpath
	if len(packets) != p.cfg.ASICs {
		return false
	}
	event := packets[0].Event
	spc := uint8(p.cfg.SamplesPerChannel)
	cur := litCursor{
		b:      b,
		peds:   p.pedestals,
		litRow: p.litRow,
		litCol: p.litCol,
		pcM:    p.pcM,
		pcMax:  p.pcMax,
		gain:   p.cfg.GainADC,
		half:   p.cfg.GainADC / 2,
		prevFl: -2,
	}
	limits := p.limits
	limits32 := p.limits32
	for i := range packets {
		pkt := &packets[i]
		//hepccl:coldpath
		if pkt.ASICIndex() != i || pkt.Event != event || pkt.SamplesPerChannel != spc {
			return false
		}
		base := i * ChannelsPerASIC
		if blk := pkt.block; len(blk) == ChannelsPerASIC*4 && limits32 != nil {
			if uintptr(unsafe.Pointer(&blk[0]))&7 == 0 {
				u := unsafe.Slice((*uint64)(unsafe.Pointer(&blk[0])), ChannelsPerASIC*2)
				// base = i·ChannelsPerASIC with i < ASICs, and the limit
				// tables hold ASICs·ChannelsPerASIC entries — a config
				// contract the compiler cannot see.
				//hepccl:checked
				lim := limits32[base : base+ChannelsPerASIC : base+ChannelsPerASIC]
				for ch := 0; ch < ChannelsPerASIC; ch += 8 {
					p0 := u[2*ch] + u[2*ch+1]
					p1 := u[2*ch+2] + u[2*ch+3]
					p2 := u[2*ch+4] + u[2*ch+5]
					p3 := u[2*ch+6] + u[2*ch+7]
					r0 := uint32(p0 + p0>>32)
					r1 := uint32(p1 + p1>>32)
					r2 := uint32(p2 + p2>>32)
					r3 := uint32(p3 + p3>>32)
					d0 := r0 - lim[ch]
					d1 := r1 - lim[ch+1]
					d2 := r2 - lim[ch+2]
					d3 := r3 - lim[ch+3]
					p4 := u[2*ch+8] + u[2*ch+9]
					p5 := u[2*ch+10] + u[2*ch+11]
					p6 := u[2*ch+12] + u[2*ch+13]
					p7 := u[2*ch+14] + u[2*ch+15]
					r4 := uint32(p4 + p4>>32)
					r5 := uint32(p5 + p5>>32)
					r6 := uint32(p6 + p6>>32)
					r7 := uint32(p7 + p7>>32)
					d4 := r4 - lim[ch+4]
					d5 := r5 - lim[ch+5]
					d6 := r6 - lim[ch+6]
					d7 := r7 - lim[ch+7]
					if int32(d0&d1&d2&d3&d4&d5&d6&d7) < 0 {
						continue // all eight channels dark
					}
					if int32(d0) >= 0 {
						cur.add(int32(base+ch), int64(r0))
					}
					if int32(d1) >= 0 {
						cur.add(int32(base+ch+1), int64(r1))
					}
					if int32(d2) >= 0 {
						cur.add(int32(base+ch+2), int64(r2))
					}
					if int32(d3) >= 0 {
						cur.add(int32(base+ch+3), int64(r3))
					}
					if int32(d4) >= 0 {
						cur.add(int32(base+ch+4), int64(r4))
					}
					if int32(d5) >= 0 {
						cur.add(int32(base+ch+5), int64(r5))
					}
					if int32(d6) >= 0 {
						cur.add(int32(base+ch+6), int64(r6))
					}
					if int32(d7) >= 0 {
						cur.add(int32(base+ch+7), int64(r7))
					}
				}
				continue
			}
			// Same limit-table contract as the aligned route above.
			//hepccl:checked
			lim := limits[base : base+ChannelsPerASIC : base+ChannelsPerASIC]
			blk = blk[: ChannelsPerASIC*4 : ChannelsPerASIC*4]
			for ch := 0; ch < ChannelsPerASIC; ch++ {
				o := ch * 4
				r := int64(blk[o]) + int64(blk[o+1]) + int64(blk[o+2]) + int64(blk[o+3])
				if r >= lim[ch] {
					cur.add(int32(base+ch), r)
				}
			}
			continue
		}
		// Same limit-table contract as the block routes above.
		//hepccl:checked
		lim := limits[base : base+ChannelsPerASIC : base+ChannelsPerASIC]
		for ch := 0; ch < ChannelsPerASIC; ch++ {
			var r int64
			for _, v := range pkt.Samples[ch] {
				r += int64(v)
			}
			if r >= lim[ch] {
				cur.add(int32(base+ch), r)
			}
		}
	}
	cur.flush()
	rec.Event = event
	return true
}

// batchEventRef is the reference route for events the fused decode rejects:
// full checkEvent validation (reproducing its exact error strings), the
// ServeEvent integration pass into the merged image and lit bitmap, then
// bitmap-based run extraction into a fresh open batch event. Valid events
// reach the same batch arena either way, so downstream resolution and
// scatter need not distinguish the routes.
func (p *Pipeline) batchEventRef(packets []Packet, rec *EventRecord, b *runccl.Batch) error {
	if err := p.checkEvent(packets); err != nil {
		return fmt.Errorf("adapt: %w", err)
	}
	sc := &p.serve
	//hepccl:amortized
	if sc.merged == nil {
		sc.merged = make([]grid.Value, p.Channels())
		sc.lit = make([]litRef, 0, 256)
	}
	//hepccl:amortized
	if sc.bitmap == nil {
		sc.bitmap = make([]uint64, p.runEngine.BitmapLen())
	}
	merged := sc.merged
	bitmap := sc.bitmap
	for i := range bitmap {
		bitmap[i] = 0
	}
	px := len(p.litRow)
	lit := integrateEvent(packets, p.limits, p.minLim, sc.lit[:0])
	sc.lit = lit
	gain := p.cfg.GainADC
	half := gain / 2
	// Lit entries carry flat indexes < Channels (integrateEvent's
	// contract), which bounds every per-channel table load here.
	//hepccl:checked
	for _, le := range lit {
		fl := int(le.fl)
		num := le.raw - p.pedestals[fl] + half
		if uint64(num) < p.pcMax {
			merged[fl] = grid.Value(uint64(num) * p.pcM >> 47)
		} else {
			merged[fl] = PhotonCount(le.raw-p.pedestals[fl], gain)
		}
		if fl < px {
			bitmap[p.litWord[fl]] |= p.litMask[fl]
		}
	}
	b.BeginEvent()
	b.ExtractEvent(bitmap, merged[:px])
	rec.Event = packets[0].Event
	return nil
}
