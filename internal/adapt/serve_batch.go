package adapt

// ServeBatch processes a batch of assembled events through the serving fast
// path, reusing one scratch arena (the pipeline's) across the whole batch.
// This is the entry point internal/server workers use to amortize per-event
// overhead: one call serves every event a shard has queued, and recs[i]
// reuses its island storage across batches.
//
// events, recs, and errs must have equal length. Per-event failures are
// recorded in errs[i] (nil on success) and do not stop the batch — a bad
// event from one connection must not discard its shard-mates. It returns the
// number of events served successfully.
//
//hepccl:hotpath
func (p *Pipeline) ServeBatch(events [][]Packet, recs []EventRecord, errs []error) int {
	//hepccl:coldpath
	if len(recs) != len(events) || len(errs) != len(events) {
		panic("adapt: ServeBatch requires len(events) == len(recs) == len(errs)")
	}
	ok := 0
	for i, ev := range events {
		if errs[i] = p.ServeEvent(ev, &recs[i]); errs[i] == nil {
			ok++
		}
	}
	return ok
}
