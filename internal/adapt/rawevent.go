package adapt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Raw event hand-off: the framing layer an L4 router needs. A gateway that
// consistent-hashes events across backends must group frames into events and
// read each event's id, but it should pay for nothing else — no checksum, no
// sample decode, no Packet construction. RawEventReader is that layer: it
// walks the same self-framing wire format as StreamReader (magic hunt,
// header-derived length, held-frame interruption recovery) and hands the
// caller the event's raw wire bytes, still in marshal order, ready to be
// written verbatim to whichever backend the event hashes to. Payload
// corruption passes through — the backend's fused checksum+decode is the
// single point of validation, exactly as a hardware event builder forwards
// triggers it never inspects.

// RawEventReader frames events out of a packet stream without decoding them.
// It is not safe for concurrent use; a gateway runs one per client link.
type RawEventReader struct {
	r *bufio.Reader
	// held retains the raw bytes of a valid-looking frame that interrupted an
	// event assembly (it belongs to a later event); the next assembly starts
	// from it instead of re-reading the wire, bounding a lost frame's damage
	// to one event — the same contract as StreamReader's held Packet.
	held    []byte
	hasHeld bool
	// SkippedBytes counts bytes discarded while hunting for a frame magic.
	SkippedBytes int
}

// NewRawEventReader returns a raw framer over r.
func NewRawEventReader(r io.Reader) *RawEventReader {
	return &RawEventReader{r: bufio.NewReaderSize(r, streamBufSize)}
}

// Reset discards buffered state and counters and switches the reader to r,
// retaining the internal buffers.
func (rr *RawEventReader) Reset(r io.Reader) {
	rr.r.Reset(r)
	rr.hasHeld = false
	rr.SkippedBytes = 0
}

// Buffered reports how many un-consumed bytes sit in the read window. A
// forwarder uses it as the natural flush boundary: when nothing is buffered,
// the next ReadEvent will block on the socket, so everything staged for the
// backends should be flushed first.
//
//hepccl:hotpath
func (rr *RawEventReader) Buffered() int { return rr.r.Buffered() }

// peekFrame positions the window on the next frame and returns it (header
// through checksum, unvalidated beyond magic and length). It owns resync: on
// garbage it hunts for the next magic pair exactly as StreamReader does.
// Returns io.EOF only at a clean end of stream.
//
//hepccl:hotpath
func (rr *RawEventReader) peekFrame() ([]byte, error) {
	for {
		hdr, err := rr.r.Peek(headerBytes)
		// bufio.Peek returns err == nil only with all headerBytes present —
		// an I/O contract outside compiler range proofs.
		//hepccl:checked
		if err != nil || hdr[0] != magicHi || hdr[1] != magicLo {
			if len(hdr) >= 2 && hdr[0] == magicHi && hdr[1] == magicLo {
				// Aligned frame but the header itself is truncated.
				//hepccl:coldpath
				if err != io.EOF {
					return nil, wrapErr(err)
				}
				n, derr := rr.drainAll()
				rr.SkippedBytes += n
				//hepccl:coldpath
				if derr != nil {
					return nil, wrapErr(derr)
				}
				return nil, io.EOF
			}
			if len(hdr) < 2 {
				//hepccl:coldpath
				if err == io.EOF {
					rr.SkippedBytes += len(hdr)
					rr.r.Discard(len(hdr))
					return nil, io.EOF
				}
				return nil, wrapErr(err)
			}
			// Out of sync: hunt over the buffered window.
			win := hdr
			if n := rr.r.Buffered(); n > len(win) {
				win, _ = rr.r.Peek(n)
			}
			at := scanMagic(win)
			if at < 0 {
				n := len(win)
				// n > 0 always holds (the window held a rejected pair); the
				// explicit guard is what lets the compiler drop the check.
				if n > 0 && win[n-1] == magicHi {
					n--
				}
				rr.SkippedBytes += n
				rr.r.Discard(n)
				continue
			}
			rr.SkippedBytes += at
			rr.r.Discard(at)
			continue
		}
		// The fast path reaches here only with err == nil, so Peek's
		// contract pins len(hdr) == headerBytes.
		//hepccl:checked
		total := headerBytes + 2*ChannelsPerASIC*int(hdr[headerBytes-1]) + 2
		frame, err := rr.r.Peek(total)
		if err != nil {
			//hepccl:coldpath
			if err != io.EOF && err != io.ErrUnexpectedEOF {
				return nil, wrapErr(err)
			}
			// Stream ended mid-frame: a truncated tail, not a fault.
			rr.SkippedBytes += len(frame)
			rr.r.Discard(len(frame))
			return nil, io.EOF
		}
		return frame, nil
	}
}

// ReadEventInto appends the raw wire bytes of the next event — `asics` frames
// sharing one event id — onto dst (reusing its capacity) and returns the
// event id with the extended slice. Frames are forwarded as found: magic and
// length are checked (that is what framing requires), checksums are not.
//
// A frame carrying a different event id interrupts the assembly: the partial
// event's bytes are discarded, the interrupting frame is retained for the
// next call, and ErrIncompleteEvent is returned — identical recovery to
// StreamReader.ReadEventInto, so one lost frame costs exactly one event.
//
//hepccl:hotpath
func (rr *RawEventReader) ReadEventInto(dst []byte, asics int) (uint32, []byte, error) {
	//hepccl:coldpath
	if asics < 1 {
		return 0, dst, fmt.Errorf("adapt: RawEventReader needs asics >= 1")
	}
	dst = dst[:0]
	var event uint32
	i := 0
	if rr.hasHeld {
		rr.hasHeld = false
		event = binary.BigEndian.Uint32(rr.held[4:])
		//hepccl:amortized
		dst = append(dst, rr.held...)
		i = 1
	}
	for ; i < asics; i++ {
		frame, err := rr.peekFrame()
		if err != nil {
			//hepccl:coldpath
			if i == 0 {
				return 0, dst, err
			}
			//hepccl:coldpath
			if err == io.EOF {
				return event, dst[:0], fmt.Errorf("%w: got %d of %d packets for event %d",
					ErrIncompleteEvent, i, asics, event)
			}
			//hepccl:coldpath
			return event, dst[:0], fmt.Errorf("%w: after %d of %d packets for event %d: %w",
				ErrIncompleteEvent, i, asics, event, err)
		}
		// peekFrame returned a full frame: len(frame) ≥ headerBytes.
		//hepccl:checked
		ev := binary.BigEndian.Uint32(frame[4:])
		if i == 0 {
			event = ev
		} else if ev != event {
			// Keep the interrupting frame (copy: its window bytes are about to
			// be discarded) so the next assembly resumes from it.
			//hepccl:amortized
			rr.held = append(rr.held[:0], frame...)
			rr.hasHeld = true
			rr.r.Discard(len(frame))
			//hepccl:coldpath
			return event, dst[:0], fmt.Errorf("%w: event %d interrupted by packet from event %d",
				ErrIncompleteEvent, event, ev)
		}
		//hepccl:amortized
		dst = append(dst, frame...)
		rr.r.Discard(len(frame))
	}
	return event, dst, nil
}

// drainAll consumes the rest of the stream, returning the byte count and any
// non-EOF error.
func (rr *RawEventReader) drainAll() (int, error) {
	n := 0
	for {
		m, err := rr.r.Discard(32 << 10)
		n += m
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
	}
}
