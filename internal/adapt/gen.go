package adapt

import (
	"fmt"

	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

// Front-end simulation: given true photo-electron counts per channel, build
// the digitizer packets the FPGA pipeline would actually receive. This is
// the substitution for real detector electronics (DESIGN.md §2): waveform
// shapes, pedestals, noise, and ADC quantization all exercise the pipeline's
// packet handling and calibration paths.

// GenerateEvent digitizes a flat photo-electron image into one packet per
// ASIC. The image length must not exceed asics×16 channels; missing channels
// read pedestal only. The pulse onset sits a quarter of the way into the
// readout window (capped at sample 4, the full-window position), so short
// windows still capture the charge.
func GenerateEvent(pe []grid.Value, asics int, event uint32, timestamp uint64,
	dig detector.DigitizerConfig, rng *detector.RNG) ([]Packet, error) {
	if asics < 1 {
		return nil, fmt.Errorf("adapt: need at least one ASIC")
	}
	if asics > MaxASICs {
		return nil, fmt.Errorf("adapt: %d ASICs exceed the %d the wire index addresses", asics, MaxASICs)
	}
	if len(pe) > asics*ChannelsPerASIC {
		return nil, fmt.Errorf("adapt: %d channels exceed %d ASICs × 16", len(pe), asics)
	}
	if dig.Samples < 1 || dig.Samples > 255 {
		return nil, fmt.Errorf("adapt: digitizer window %d outside 1..255", dig.Samples)
	}
	t0 := float64(dig.Samples) / 4
	if t0 > 4 {
		t0 = 4
	}
	packets := make([]Packet, asics)
	for a := 0; a < asics; a++ {
		pkt := &packets[a]
		pkt.Header = Header{
			Magic:             PacketMagic,
			ASIC:              uint8(a),
			Flags:             uint8(a >> 8),
			Event:             event,
			Timestamp:         timestamp,
			SamplesPerChannel: uint8(dig.Samples),
		}
		// One contiguous channel-major backing array per packet (the same
		// layout Unmarshal produces); DigitizeInto clamps samples to be
		// non-negative. A digitizer with no MaxADC saturation could in
		// principle exceed the 16-bit wire range — such packets are not
		// marshalable anyway, but keep the block invariant honest by
		// dropping the block (the serving path then takes its generic loop).
		n := dig.Samples
		pkt.block = make([]int32, ChannelsPerASIC*n)
		for ch := 0; ch < ChannelsPerASIC; ch++ {
			flat := a*ChannelsPerASIC + ch
			var count float64
			if flat < len(pe) {
				count = float64(pe[flat])
			}
			pkt.Samples[ch] = pkt.block[ch*n : (ch+1)*n : (ch+1)*n]
			dig.DigitizeInto(pkt.Samples[ch], count, t0, rng)
		}
		for _, v := range pkt.block {
			if v > 0xFFFF {
				pkt.block = nil
				break
			}
		}
	}
	return packets, nil
}

// GeneratePedestalEvents builds light-free calibration events.
func GeneratePedestalEvents(n, asics int, dig detector.DigitizerConfig, rng *detector.RNG) ([][]Packet, error) {
	events := make([][]Packet, n)
	for i := range events {
		ev, err := GenerateEvent(nil, asics, uint32(i), uint64(i)*1000, dig, rng)
		if err != nil {
			return nil, err
		}
		events[i] = ev
	}
	return events, nil
}
