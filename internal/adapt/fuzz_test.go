package adapt

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzStreamReader feeds arbitrary bytes to the packet-stream parser: it
// must never panic, must terminate, and every packet it does return must
// re-marshal to a validating frame.
func FuzzStreamReader(f *testing.F) {
	// Seed with a valid packet surrounded by junk.
	var p Packet
	p.Header = Header{ASIC: 2, Event: 5, SamplesPerChannel: 2}
	for ch := 0; ch < ChannelsPerASIC; ch++ {
		p.Samples[ch] = []int32{200, 240}
	}
	frame, err := p.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(append([]byte{0xA1, 0x00, 0xFF}, frame...), 0xA1, 0xFA, 0x01))
	f.Add(frame)
	f.Add([]byte{0xA1, 0xFA})
	f.Fuzz(func(t *testing.T, data []byte) {
		sr := NewStreamReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ { // bound iterations defensively
			pkt, err := sr.ReadPacket()
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatalf("unexpected error kind: %v", err)
			}
			re, err := pkt.Marshal()
			if err != nil {
				t.Fatalf("returned packet does not re-marshal: %v", err)
			}
			var q Packet
			if _, err := q.Unmarshal(re); err != nil {
				t.Fatalf("returned packet does not re-validate: %v", err)
			}
		}
	})
}

// FuzzStreamReaderResync is the resynchronization contract under arbitrary
// link corruption: the reader never panics, never iterates without consuming
// input (progress), and its skipped-byte accounting is exact — at clean EOF
// every input byte is either part of a returned packet or counted in
// SkippedBytes, so a server can account for all traffic on a hostile link.
func FuzzStreamReaderResync(f *testing.F) {
	var p Packet
	p.Header = Header{ASIC: 0, Event: 7, SamplesPerChannel: 1}
	for ch := 0; ch < ChannelsPerASIC; ch++ {
		p.Samples[ch] = []int32{100}
	}
	frame, err := p.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	corrupt := append([]byte(nil), frame...)
	corrupt[len(corrupt)/2] ^= 0x10
	f.Add(append(append([]byte{0xA1, 0xFA, 0x00}, corrupt...), frame...))
	f.Add(append(append([]byte(nil), frame...), frame[:9]...))
	f.Add(bytes.Repeat([]byte{0xA1}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		// minWire is the smallest valid frame (SamplesPerChannel = 0), hence
		// the strongest bound on how many packets the input can contain.
		const minWire = headerBytes + 2
		maxIters := len(data)/minWire + 2

		// Phase 1: packet scanning with exact byte accounting.
		sr := NewStreamReader(bytes.NewReader(data))
		consumed := 0
		iters := 0
		for {
			pkt, err := sr.ReadPacket()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("non-EOF error from an in-memory stream: %v", err)
			}
			if iters++; iters > maxIters {
				t.Fatalf("no progress: %d packets from %d bytes", iters, len(data))
			}
			consumed += pkt.WireSize()
		}
		if consumed+sr.SkippedBytes != len(data) {
			t.Fatalf("accounting: %d consumed + %d skipped != %d input bytes",
				consumed, sr.SkippedBytes, len(data))
		}

		// Phase 2: event assembly over the same bytes must also terminate
		// with bounded iterations and without panicking.
		sr = NewStreamReader(bytes.NewReader(data))
		var dst []Packet
		for iters = 0; ; iters++ {
			if iters > maxIters {
				t.Fatalf("event assembly made no progress on %d bytes", len(data))
			}
			got, err := sr.ReadEventInto(dst, 3)
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrIncompleteEvent) {
					t.Fatalf("unexpected assembly error kind: %v", err)
				}
				continue
			}
			dst = got
		}
	})
}

// FuzzUnmarshalPacket checks Unmarshal never panics and never accepts a
// frame whose re-marshaling differs.
func FuzzUnmarshalPacket(f *testing.F) {
	var p Packet
	p.Header = Header{ASIC: 1, Event: 9, SamplesPerChannel: 3}
	for ch := 0; ch < ChannelsPerASIC; ch++ {
		p.Samples[ch] = []int32{1, 2, 3}
	}
	frame, _ := p.Marshal()
	f.Add(frame)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var q Packet
		n, err := q.Unmarshal(data)
		if err != nil {
			return
		}
		re, err := q.Marshal()
		if err != nil {
			t.Fatalf("accepted packet does not re-marshal: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatal("re-marshaled frame differs from accepted input")
		}
	})
}

// FuzzEventRecord round-trips downlink records through arbitrary prefixes.
func FuzzEventRecord(f *testing.F) {
	rec := EventRecord{Event: 3, Islands: []IslandRecord{{Label: 1, Pixels: 2, Sum: 5, ColQ16: ToQ16(1.5)}}}
	f.Add(rec.Marshal())
	f.Add([]byte{0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalEventRecord(data)
		if err != nil {
			return
		}
		re := got.Marshal()
		back, err := UnmarshalEventRecord(re)
		if err != nil {
			t.Fatalf("re-marshaled record does not parse: %v", err)
		}
		if back.Event != got.Event || len(back.Islands) != len(got.Islands) {
			t.Fatal("record round trip changed content")
		}
	})
}
