package adapt

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/wustl-adapt/hepccl/internal/detector"
)

// errTransport is the injected fault; tests assert it survives wrapping.
var errTransport = errors.New("simulated transport fault")

// faultReader yields data and then fails with errTransport instead of EOF.
type faultReader struct {
	data []byte
	off  int
}

func (f *faultReader) Read(p []byte) (int, error) {
	if f.off >= len(f.data) {
		return 0, errTransport
	}
	n := copy(p, f.data[f.off:])
	f.off += n
	return n, nil
}

func testPackets(t testing.TB, asics int, event uint32) []Packet {
	t.Helper()
	dig := detector.DefaultDigitizer()
	dig.Samples = 4
	packets, err := GenerateEvent(nil, asics, event, 0, dig, detector.NewRNG(uint64(event)+1))
	if err != nil {
		t.Fatal(err)
	}
	return packets
}

func marshalStream(t testing.TB, packets []Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	if err := sw.WriteEvent(packets); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamReaderWrapsTransportError injects a fault at several positions —
// before any frame, mid-header, and mid-body — and checks the cause is
// returned (wrapped) rather than masked as io.EOF.
func TestStreamReaderWrapsTransportError(t *testing.T) {
	stream := marshalStream(t, testPackets(t, 2, 7))
	frame := len(stream) / 2
	for _, cut := range []int{0, 1, 5, frame + 3, len(stream) - 1} {
		sr := NewStreamReader(&faultReader{data: stream[:cut]})
		var lastErr error
		for {
			_, err := sr.ReadPacket()
			if err != nil {
				lastErr = err
				break
			}
		}
		if errors.Is(lastErr, io.EOF) {
			t.Fatalf("cut at %d: transport fault reported as io.EOF", cut)
		}
		if !errors.Is(lastErr, errTransport) {
			t.Fatalf("cut at %d: error %v does not wrap the cause", cut, lastErr)
		}
	}
}

// TestStreamReaderCleanEOF confirms genuine end of stream is still io.EOF,
// including after trailing garbage and after a truncated final frame.
func TestStreamReaderCleanEOF(t *testing.T) {
	stream := marshalStream(t, testPackets(t, 2, 3))
	cases := map[string][]byte{
		"exact":           stream,
		"trailing junk":   append(append([]byte{}, stream...), 0xA1, 0x00, 0x42),
		"truncated frame": stream[:len(stream)-5],
	}
	for name, data := range cases {
		sr := NewStreamReader(bytes.NewReader(data))
		var err error
		for err == nil {
			_, err = sr.ReadPacket()
		}
		if !errors.Is(err, io.EOF) {
			t.Fatalf("%s: got %v, want io.EOF", name, err)
		}
	}
}

// TestReadEventWrapsTransportError: a fault mid-event must surface both
// ErrIncompleteEvent (the assembly outcome) and the transport cause.
func TestReadEventWrapsTransportError(t *testing.T) {
	const asics = 3
	stream := marshalStream(t, testPackets(t, asics, 5))
	cut := len(stream) - len(stream)/asics - 2 // inside the last packet
	sr := NewStreamReader(&faultReader{data: stream[:cut]})
	_, err := sr.ReadEvent(asics)
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, ErrIncompleteEvent) {
		t.Fatalf("error %v does not wrap ErrIncompleteEvent", err)
	}
	if !errors.Is(err, errTransport) {
		t.Fatalf("error %v does not wrap the transport cause", err)
	}
}

// TestReadEventTruncatedIsIncomplete: clean EOF mid-event reports an
// incomplete event with packet counts, not a bare EOF.
func TestReadEventTruncatedIsIncomplete(t *testing.T) {
	const asics = 3
	stream := marshalStream(t, testPackets(t, asics, 5))
	sr := NewStreamReader(bytes.NewReader(stream[:len(stream)/2]))
	_, err := sr.ReadEvent(asics)
	if !errors.Is(err, ErrIncompleteEvent) {
		t.Fatalf("got %v, want ErrIncompleteEvent", err)
	}
}

// corruptedStream interleaves valid frames with checksum-corrupted copies —
// the resynchronization worst case.
func corruptedStream(t testing.TB, events int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for ev := 0; ev < events; ev++ {
		for i, pkt := range testPackets(t, 4, uint32(ev)) {
			frame, err := pkt.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if i%2 == 0 {
				bad := append([]byte{}, frame...)
				bad[headerBytes+3] ^= 0x55 // payload corruption
				buf.Write(bad)
			}
			buf.Write(frame)
		}
	}
	return buf.Bytes()
}

// TestStreamReaderCorruptionRecovery: every valid frame around the corrupted
// ones must still parse.
func TestStreamReaderCorruptionRecovery(t *testing.T) {
	const events = 5
	stream := corruptedStream(t, events)
	sr := NewStreamReader(bytes.NewReader(stream))
	good := 0
	for {
		if _, err := sr.ReadPacket(); err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatal(err)
			}
			break
		}
		good++
	}
	if want := events * 4; good != want {
		t.Fatalf("parsed %d valid packets, want %d", good, want)
	}
	if sr.BadPackets != events*2 {
		t.Fatalf("BadPackets = %d, want %d", sr.BadPackets, events*2)
	}
	if sr.SkippedBytes == 0 {
		t.Fatal("corruption must skip bytes")
	}
}

// BenchmarkStreamReaderCorrupted measures packet parsing on a stream where
// half the frames fail validation. The push-back path used to nest a fresh
// bufio.Reader + io.MultiReader per corrupted frame; with the pending-bytes
// buffer and the static checksum error the loop stays allocation-free after
// warm-up no matter how corrupted the link is.
func BenchmarkStreamReaderCorrupted(b *testing.B) {
	stream := corruptedStream(b, 20)
	r := bytes.NewReader(stream)
	sr := NewStreamReader(r)
	var p Packet
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(stream)
		sr.Reset(r)
		for {
			if err := sr.ReadPacketInto(&p); err != nil {
				if !errors.Is(err, io.EOF) {
					b.Fatal(err)
				}
				break
			}
		}
	}
}

// BenchmarkStreamReaderClean is the baseline on an uncorrupted stream.
func BenchmarkStreamReaderClean(b *testing.B) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	for ev := 0; ev < 20; ev++ {
		if err := sw.WriteEvent(testPackets(b, 4, uint32(ev))); err != nil {
			b.Fatal(err)
		}
	}
	stream := buf.Bytes()
	r := bytes.NewReader(stream)
	sr := NewStreamReader(r)
	var p Packet
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(stream)
		sr.Reset(r)
		for {
			if err := sr.ReadPacketInto(&p); err != nil {
				if !errors.Is(err, io.EOF) {
					b.Fatal(err)
				}
				break
			}
		}
	}
}
