package adapt

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"github.com/wustl-adapt/hepccl/internal/detector"
)

func makePackets(t *testing.T, n int, event uint32) []Packet {
	t.Helper()
	dig := detector.DefaultDigitizer()
	dig.NoiseRMS = 0
	packets, err := GenerateEvent(nil, n, event, uint64(event)*100, dig, nil)
	if err != nil {
		t.Fatal(err)
	}
	return packets
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	want := makePackets(t, 3, 7)
	if err := sw.WriteEvent(want); err != nil {
		t.Fatal(err)
	}
	if sw.Packets != 3 {
		t.Fatalf("writer counted %d packets", sw.Packets)
	}
	sr := NewStreamReader(&buf)
	for i := 0; i < 3; i++ {
		p, err := sr.ReadPacket()
		if err != nil {
			t.Fatal(err)
		}
		if p.ASIC != want[i].ASIC || p.Event != 7 {
			t.Fatalf("packet %d header mismatch: %+v", i, p.Header)
		}
	}
	if _, err := sr.ReadPacket(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
	if sr.SkippedBytes != 0 || sr.BadPackets != 0 {
		t.Fatalf("clean stream reported skips: %d/%d", sr.SkippedBytes, sr.BadPackets)
	}
}

func TestStreamResyncAfterGarbage(t *testing.T) {
	var buf bytes.Buffer
	// Leading garbage, one packet, inter-packet garbage, another packet.
	buf.Write([]byte{0x00, 0xFF, 0x13, 0xA1}) // includes a lone 0xA1 decoy
	sw := NewStreamWriter(&buf)
	packets := makePackets(t, 2, 9)
	if err := sw.WritePacket(&packets[0]); err != nil {
		t.Fatal(err)
	}
	buf.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF})
	if err := sw.WritePacket(&packets[1]); err != nil {
		t.Fatal(err)
	}
	sr := NewStreamReader(&buf)
	p0, err := sr.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	p1, err := sr.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if p0.ASIC != 0 || p1.ASIC != 1 {
		t.Fatalf("resync returned wrong packets: %d, %d", p0.ASIC, p1.ASIC)
	}
	if sr.SkippedBytes == 0 {
		t.Fatal("skipped bytes not counted")
	}
	if _, err := sr.ReadPacket(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestStreamCorruptedPacketIsSkipped(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	packets := makePackets(t, 2, 11)
	if err := sw.WritePacket(&packets[0]); err != nil {
		t.Fatal(err)
	}
	if err := sw.WritePacket(&packets[1]); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[30] ^= 0xFF // corrupt a sample in packet 0: checksum fails

	sr := NewStreamReader(bytes.NewReader(data))
	p, err := sr.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if p.ASIC != 1 {
		t.Fatalf("expected to recover packet 1, got ASIC %d", p.ASIC)
	}
	if sr.BadPackets != 1 {
		t.Fatalf("BadPackets = %d, want 1", sr.BadPackets)
	}
}

func TestStreamTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	packets := makePackets(t, 1, 3)
	if err := sw.WritePacket(&packets[0]); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	sr := NewStreamReader(bytes.NewReader(data[:len(data)-5]))
	if _, err := sr.ReadPacket(); err != io.EOF {
		t.Fatalf("truncated tail: want EOF, got %v", err)
	}
}

func TestReadEvent(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	ev0 := makePackets(t, 3, 0)
	ev1 := makePackets(t, 3, 1)
	if err := sw.WriteEvent(ev0); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteEvent(ev1); err != nil {
		t.Fatal(err)
	}
	sr := NewStreamReader(&buf)
	got0, err := sr.ReadEvent(3)
	if err != nil {
		t.Fatal(err)
	}
	got1, err := sr.ReadEvent(3)
	if err != nil {
		t.Fatal(err)
	}
	if got0[0].Event != 0 || got1[0].Event != 1 || len(got0) != 3 || len(got1) != 3 {
		t.Fatalf("event assembly wrong: %d/%d", got0[0].Event, got1[0].Event)
	}
	if _, err := sr.ReadEvent(3); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestReadEventIncomplete(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	ev := makePackets(t, 3, 5)
	if err := sw.WriteEvent(ev[:2]); err != nil { // missing one packet
		t.Fatal(err)
	}
	sr := NewStreamReader(&buf)
	if _, err := sr.ReadEvent(3); !errors.Is(err, ErrIncompleteEvent) {
		t.Fatalf("want ErrIncompleteEvent, got %v", err)
	}
	// Interleaved foreign event.
	buf.Reset()
	sw = NewStreamWriter(&buf)
	sw.WritePacket(&ev[0])
	other := makePackets(t, 1, 6)
	sw.WritePacket(&other[0])
	sr = NewStreamReader(&buf)
	if _, err := sr.ReadEvent(2); !errors.Is(err, ErrIncompleteEvent) {
		t.Fatalf("want ErrIncompleteEvent on interleave, got %v", err)
	}
	if _, err := sr.ReadEvent(0); err == nil {
		t.Fatal("asics < 1 must error")
	}
}

// TestReadEventResyncAfterLostPacket: a lost packet must cost exactly one
// event. The packet that interrupts the broken assembly belongs to the next
// event and must be retained as that event's first packet — without
// retention, every later event would lose its first packet in turn.
func TestReadEventResyncAfterLostPacket(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	ev0 := makePackets(t, 3, 0)
	ev1 := makePackets(t, 3, 1)
	ev2 := makePackets(t, 3, 2)
	sw.WritePacket(&ev0[0]) // rest of event 0 lost on the link
	if err := sw.WriteEvent(ev1); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteEvent(ev2); err != nil {
		t.Fatal(err)
	}
	sr := NewStreamReader(&buf)
	if _, err := sr.ReadEvent(3); !errors.Is(err, ErrIncompleteEvent) {
		t.Fatalf("want ErrIncompleteEvent for the broken event, got %v", err)
	}
	var dst []Packet
	for want := uint32(1); want <= 2; want++ {
		got, err := sr.ReadEventInto(dst, 3)
		if err != nil {
			t.Fatalf("event %d must survive the resync: %v", want, err)
		}
		if got[0].Event != want || got[0].ASIC != 0 || got[1].ASIC != 1 || got[2].ASIC != 2 {
			t.Fatalf("event %d reassembled wrong: id=%d asics=%d,%d,%d",
				want, got[0].Event, got[0].ASIC, got[1].ASIC, got[2].ASIC)
		}
		dst = got
	}
	if _, err := sr.ReadEvent(3); err != io.EOF {
		t.Fatalf("want clean EOF after resync, got %v", err)
	}
}

// TestReadEventHeldPacketFlushedAtEOF: a retained interrupting packet at the
// end of the stream surfaces as one final incomplete event, then clean EOF.
func TestReadEventHeldPacketFlushedAtEOF(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	ev0 := makePackets(t, 3, 0)
	ev1 := makePackets(t, 3, 1)
	sw.WritePacket(&ev0[0])
	sw.WritePacket(&ev1[0]) // interrupts event 0, then the stream ends
	sr := NewStreamReader(&buf)
	if _, err := sr.ReadEvent(3); !errors.Is(err, ErrIncompleteEvent) {
		t.Fatalf("want ErrIncompleteEvent, got %v", err)
	}
	if _, err := sr.ReadEvent(3); !errors.Is(err, ErrIncompleteEvent) {
		t.Fatalf("held packet must flush as an incomplete event, got %v", err)
	}
	if _, err := sr.ReadEvent(3); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

// Property: any packet sequence round-trips through the stream, even with
// random garbage injected between packets.
func TestStreamRoundTripProperty(t *testing.T) {
	dig := detector.DefaultDigitizer()
	dig.NoiseRMS = 0
	f := func(events [4]uint32, garbage [4][]byte) bool {
		var buf bytes.Buffer
		sw := NewStreamWriter(&buf)
		var want []uint32
		for i, ev := range events {
			// Garbage that cannot contain a full fake packet header is
			// safely skipped; avoid embedding the magic byte pair.
			g := garbage[i]
			for j := 0; j+1 < len(g); j++ {
				if g[j] == 0xA1 && g[j+1] == 0xFA {
					g[j] = 0
				}
			}
			buf.Write(g)
			packets, err := GenerateEvent(nil, 1, ev, 0, dig, nil)
			if err != nil {
				return false
			}
			if err := sw.WritePacket(&packets[0]); err != nil {
				return false
			}
			want = append(want, ev)
		}
		sr := NewStreamReader(&buf)
		for _, ev := range want {
			p, err := sr.ReadPacket()
			if err != nil || p.Event != ev {
				return false
			}
		}
		_, err := sr.ReadPacket()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBadPacketBudgetSurfacesStorm: with a budget set, a garbage-only stream
// returns ErrResyncStorm instead of hunting to EOF, and the stream stays
// usable afterwards.
func TestBadPacketBudgetSurfacesStorm(t *testing.T) {
	good := makePackets(t, 1, 9)[0]
	frame, err := good.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), frame...)
	bad[len(bad)-3] ^= 0xFF
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		buf.Write(bad)
	}
	buf.Write(frame)

	sr := NewStreamReader(bytes.NewReader(buf.Bytes()))
	sr.BadPacketBudget = 4
	var p Packet
	storms := 0
	for {
		err := sr.ReadPacketInto(&p)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrResyncStorm) {
			t.Fatalf("got %v, want ErrResyncStorm", err)
		}
		storms++
		if storms > 10 {
			t.Fatal("storm error loops without progress")
		}
	}
	if p.Event != 9 {
		t.Fatalf("recovered event %d, want 9", p.Event)
	}
	if storms == 0 {
		t.Fatal("budget of 4 over 10 bad frames must surface at least one storm")
	}
	if sr.BadPackets != 10 {
		t.Fatalf("BadPackets = %d, want 10", sr.BadPackets)
	}
	// Unlimited budget: same stream, no storm errors.
	sr2 := NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err := sr2.ReadPacketInto(&p); err != nil {
		t.Fatalf("unlimited budget errored: %v", err)
	}
}

// scanMagicRef is the obvious two-byte scan scanMagic must agree with.
func scanMagicRef(buf []byte) int {
	for i := 0; i+1 < len(buf); i++ {
		if buf[i] == magicHi && buf[i+1] == magicLo {
			return i
		}
	}
	return -1
}

// TestScanMagicBorrowFalsePositive pins the borrow-ripple bug: the SWAR
// zero-byte detect flags the lane one above an exact 0xA1 match (the
// subtraction borrows across lanes), and without re-verifying the candidate
// byte the scanner reported a pair at a position holding 0xA0. The stream
// reader recovered by rejecting the header and re-hunting, but every such
// hit cost an extra peek-discard round trip per corrupted window.
func TestScanMagicBorrowFalsePositive(t *testing.T) {
	cases := [][]byte{
		// 0xA1 0xA0 0x5A inside one word: the 0xA0 lane is falsely flagged
		// and is followed by the magic-low byte.
		{0, 0, magicHi, 0xA0, magicLo, 0, 0, 0, 0, 0, 0, 0},
		// Same pattern with a real pair later in the buffer.
		{0, magicHi, 0xA0, magicLo, 0, 0, 0, 0, magicHi, magicLo, 0, 0},
		// Ripple chain: consecutive 0xA1 bytes keep the borrow alive.
		{magicHi, magicHi, magicHi, 0xA0, magicLo, 0, 0, 0, 0, 0, 0, 0},
	}
	for i, buf := range cases {
		if got, want := scanMagic(buf), scanMagicRef(buf); got != want {
			t.Errorf("case %d: scanMagic = %d, want %d", i, got, want)
		}
	}
}

// TestScanMagicExhaustive sweeps every pair position and word-lane phase,
// plus randomized magic-heavy buffers, against the reference scan.
func TestScanMagicExhaustive(t *testing.T) {
	for size := 0; size <= 40; size++ {
		for at := 0; at+1 < size; at++ {
			buf := make([]byte, size)
			buf[at] = magicHi
			buf[at+1] = magicLo
			if got := scanMagic(buf); got != at {
				t.Fatalf("size %d pair at %d: got %d", size, at, got)
			}
		}
	}
	rng := detector.NewRNG(7)
	buf := make([]byte, 64)
	for trial := 0; trial < 50000; trial++ {
		n := rng.Intn(len(buf))
		b := buf[:n]
		for i := range b {
			// Bias heavily toward the magic bytes and their borrow
			// neighbours to stress candidate verification.
			switch rng.Intn(5) {
			case 0:
				b[i] = magicHi
			case 1:
				b[i] = magicLo
			case 2:
				b[i] = 0xA0
			default:
				b[i] = byte(rng.Intn(256))
			}
		}
		if got, want := scanMagic(b), scanMagicRef(b); got != want {
			t.Fatalf("n=%d buf=%x: got %d, want %d", n, b, got, want)
		}
	}
}
