package adapt

import "github.com/wustl-adapt/hepccl/internal/design"

// Dataflow throughput model. The pipeline stages of Fig 3 run as concurrent
// dataflow processes, so the sustained event rate is set by the slowest
// stage's per-event initiation interval, not by the sum of latencies. The
// per-stage models:
//
//   - packet handling: each ASIC's handler deserializes 16 channels ×
//     SamplesPerChannel 16-bit words over a 4-lane link (4 words/cycle)
//     plus a fixed header cost; all ASIC handlers run in parallel;
//   - pedestal subtraction / photon counting / zero-suppression: II=1 over
//     the 16 channels of each ASIC (parallel per ASIC) plus pipeline depth;
//   - merge: one 16-channel word per ASIC per cycle plus handshake;
//   - island detection: in 1D mode the scan is event-overlapped (II=1 over
//     the channel array, centroid divides hidden in the dataflow); in 2D
//     mode the published design is not overlapped, so its interval is the
//     full function latency (the paper's tables report II = latency, and §6
//     names the serialized outer loop as the reason).
//
// With the DefaultADAPT configuration (320 channels, 1D) the bottleneck is
// the 1D scan: ≈336 cycles/event → ≈298k events/s at 100 MHz, matching the
// "300k events per second" reported for the ADAPT prototype pipeline (§2).
const (
	packetHeaderCycles = 8
	linkLanes          = 4
	channelStageDepth  = 6
	mergeHandshake     = 4
)

// StageInterval is one dataflow stage's per-event initiation interval.
type StageInterval struct {
	Name   string
	Cycles int64
}

// StageIntervals returns the per-event interval of every pipeline stage.
func (p *Pipeline) StageIntervals() []StageInterval {
	cfg := p.cfg
	words := int64(ChannelsPerASIC*cfg.SamplesPerChannel+linkLanes-1) / linkLanes
	packet := packetHeaderCycles + words
	channel := int64(ChannelsPerASIC + channelStageDepth)
	merge := int64(cfg.ASICs + mergeHandshake)

	var island int64
	if cfg.Detection.TwoDimension {
		island = design.Latency(cfg.Detection.TwoD.Stage, cfg.Detection.TwoD.Connectivity,
			cfg.Detection.TwoD.Rows, cfg.Detection.TwoD.Cols)
	} else {
		// Event-overlapped 1D scan: II=1 over the channel array.
		island = int64(p.Channels()) + 16
	}
	return []StageInterval{
		{Name: "packet", Cycles: packet},
		{Name: "pedestal", Cycles: channel},
		{Name: "photon", Cycles: channel},
		{Name: "zerosuppress", Cycles: channel},
		{Name: "merge", Cycles: merge},
		{Name: "island", Cycles: island},
	}
}

// EventIntervalCycles returns the bottleneck stage interval.
func (p *Pipeline) EventIntervalCycles() int64 {
	var max int64
	for _, s := range p.StageIntervals() {
		if s.Cycles > max {
			max = s.Cycles
		}
	}
	return max
}

// EventsPerSecond returns the sustained pipeline event rate at the design
// clock.
func (p *Pipeline) EventsPerSecond() float64 {
	i := p.EventIntervalCycles()
	if i <= 0 {
		return 0
	}
	return design.ClockMHz * 1e6 / float64(i)
}

// Bottleneck returns the name of the rate-limiting stage.
func (p *Pipeline) Bottleneck() string {
	name, max := "", int64(-1)
	for _, s := range p.StageIntervals() {
		if s.Cycles > max {
			name, max = s.Name, s.Cycles
		}
	}
	return name
}
