package adapt

import (
	"fmt"

	"github.com/wustl-adapt/hepccl/internal/design"
	"github.com/wustl-adapt/hepccl/internal/detector"
)

// Trigger/deadtime simulation. The §5.5 throughput numbers are sustained
// rates; real triggers arrive as a Poisson process, so whether "15k events/s
// capacity" actually services a 15 kHz instrument depends on the derandomizer
// FIFO in front of the pipeline. This discrete-event model quantifies that —
// the first of the "system scalability concerns" §6 says integration into
// CTA's real-time pipeline will need.

// TriggerConfig parameterizes one trigger-load simulation.
type TriggerConfig struct {
	// RateHz is the mean Poisson trigger rate.
	RateHz float64
	// FIFODepth is the derandomizer capacity in buffered events. An event
	// arriving with the FIFO full (and the pipeline busy) is lost.
	FIFODepth int
	// Events is the number of triggers to simulate.
	Events int
	// Seed drives the deterministic arrival process.
	Seed uint64
}

// DeadtimeResult summarizes a trigger-load simulation.
type DeadtimeResult struct {
	// Offered is the number of triggers generated.
	Offered int
	// Accepted is the number of events processed.
	Accepted int
	// Dropped is the number lost to a full FIFO.
	Dropped int
	// LossFraction is Dropped/Offered.
	LossFraction float64
	// Utilization is the busy fraction of the pipeline (ρ).
	Utilization float64
	// MaxQueue is the FIFO high-water mark observed.
	MaxQueue int
	// MeanQueue is the time-averaged FIFO occupancy.
	MeanQueue float64
}

// SimulateTrigger runs a Poisson trigger stream against the pipeline's
// per-event service interval (EventIntervalCycles at the design clock).
func (p *Pipeline) SimulateTrigger(cfg TriggerConfig) (DeadtimeResult, error) {
	if cfg.RateHz <= 0 {
		return DeadtimeResult{}, fmt.Errorf("adapt: trigger rate must be positive")
	}
	if cfg.Events < 1 {
		return DeadtimeResult{}, fmt.Errorf("adapt: need at least one trigger")
	}
	if cfg.FIFODepth < 0 {
		return DeadtimeResult{}, fmt.Errorf("adapt: negative FIFO depth")
	}
	service := float64(p.EventIntervalCycles()) / (design.ClockMHz * 1e6) // seconds
	rng := detector.NewRNG(cfg.Seed)

	var (
		now          float64 // arrival clock
		pipelineFree float64 // time the pipeline finishes its current event
		queue        []float64
		res          DeadtimeResult
		busy         float64 // accumulated busy time
		queueArea    float64 // ∫ queue-depth dt for the mean
		lastT        float64
	)
	drainUntil := func(t float64) {
		// Start queued events whenever the pipeline frees before t.
		for len(queue) > 0 && pipelineFree <= t {
			start := pipelineFree
			if queue[0] > start {
				start = queue[0]
			}
			if start > t {
				break
			}
			queue = queue[1:]
			pipelineFree = start + service
			busy += service
			res.Accepted++
		}
	}
	for i := 0; i < cfg.Events; i++ {
		now += rng.Exp(1 / cfg.RateHz)
		queueArea += float64(len(queue)) * (now - lastT)
		lastT = now
		drainUntil(now)
		res.Offered++
		switch {
		case pipelineFree <= now:
			// Pipeline idle: start immediately.
			pipelineFree = now + service
			busy += service
			res.Accepted++
		case len(queue) < cfg.FIFODepth:
			queue = append(queue, now)
			if len(queue) > res.MaxQueue {
				res.MaxQueue = len(queue)
			}
		default:
			res.Dropped++
		}
	}
	// Drain the tail.
	drainUntil(pipelineFree + float64(cfg.Events)*service)
	end := pipelineFree
	if end < now {
		end = now
	}
	if end > 0 {
		res.Utilization = busy / end
		res.MeanQueue = queueArea / end
	}
	res.LossFraction = float64(res.Dropped) / float64(res.Offered)
	return res, nil
}
