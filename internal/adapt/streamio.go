package adapt

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// Packet stream I/O: the serialized form in which digitizer packets travel
// over the readout link and are archived to disk. Packets are self-framing
// (magic word + header-derived length + checksum), so the reader can
// resynchronize after corrupted or truncated packets — the behaviour the
// FPGA's packet-handling stage needs on a real link.

// StreamWriter serializes packets back-to-back onto an io.Writer.
type StreamWriter struct {
	w io.Writer
	// Packets counts successfully written packets.
	Packets int
}

// NewStreamWriter returns a writer over w.
func NewStreamWriter(w io.Writer) *StreamWriter { return &StreamWriter{w: w} }

// WritePacket marshals and writes one packet.
func (sw *StreamWriter) WritePacket(p *Packet) error {
	buf, err := p.Marshal()
	if err != nil {
		return err
	}
	if _, err := sw.w.Write(buf); err != nil {
		return err
	}
	sw.Packets++
	return nil
}

// WriteEvent writes all packets of one event in ASIC order.
func (sw *StreamWriter) WriteEvent(packets []Packet) error {
	for i := range packets {
		if err := sw.WritePacket(&packets[i]); err != nil {
			return fmt.Errorf("adapt: event packet %d: %w", i, err)
		}
	}
	return nil
}

// StreamReader parses a packet stream, skipping garbage between packets.
//
// End-of-stream vs transport faults: ReadPacket returns io.EOF only when the
// underlying reader reports a clean end of stream (possibly after skipping
// trailing garbage or a truncated final frame). Any other underlying error —
// a socket reset, a read deadline, an injected fault — is returned wrapped,
// so network servers can tell a closed connection from a failed one.
type StreamReader struct {
	r *bufio.Reader
	// pending holds bytes pushed back after a corrupted frame (and any bytes
	// staged from the underlying reader while peeking across the push-back
	// boundary). It is consumed before r and never grows beyond one frame
	// plus one header, regardless of how corrupted the link is.
	pending []byte
	off     int // consumed prefix of pending
	frame   []byte
	// held retains a valid packet that interrupted an event assembly (it
	// belongs to a later event); the next assembly starts from it instead of
	// re-reading the wire, so one lost packet costs exactly one event.
	held    Packet
	hasHeld bool
	// SkippedBytes counts bytes discarded while searching for a valid
	// packet (link noise, corrupted frames).
	SkippedBytes int
	// BadPackets counts frames that had a magic word but failed validation.
	BadPackets int
	// BadPacketBudget, when positive, bounds how many corrupted frames one
	// ReadPacket call will hunt past before returning ErrResyncStorm. Zero
	// hunts until a valid packet or end of stream. The error is recoverable
	// — a later call resumes the hunt — but it returns control to the
	// caller, which a pure-garbage link would otherwise never do.
	BadPacketBudget int
}

// NewStreamReader returns a reader over r.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Reset discards all buffered and pushed-back state, zeroes the counters,
// and switches the reader to r, retaining the internal buffers.
func (sr *StreamReader) Reset(r io.Reader) {
	sr.r.Reset(r)
	sr.pending = sr.pending[:0]
	sr.off = 0
	sr.hasHeld = false
	sr.SkippedBytes = 0
	sr.BadPackets = 0
}

// wrapErr passes io.EOF through untouched and wraps everything else.
func wrapErr(err error) error {
	if err == io.EOF {
		return io.EOF
	}
	return fmt.Errorf("adapt: stream read: %w", err)
}

// readByte pops one byte, preferring pushed-back bytes.
func (sr *StreamReader) readByte() (byte, error) {
	if sr.off < len(sr.pending) {
		b := sr.pending[sr.off]
		sr.off++
		if sr.off == len(sr.pending) {
			sr.pending, sr.off = sr.pending[:0], 0
		}
		return b, nil
	}
	return sr.r.ReadByte()
}

// peek returns the next n bytes without consuming them, staging bytes from
// the underlying reader into pending when a push-back boundary is straddled.
func (sr *StreamReader) peek(n int) ([]byte, error) {
	if len(sr.pending)-sr.off >= n {
		return sr.pending[sr.off : sr.off+n], nil
	}
	if sr.off == len(sr.pending) {
		sr.pending, sr.off = sr.pending[:0], 0
		return sr.r.Peek(n)
	}
	if sr.off > 0 {
		sr.pending = append(sr.pending[:0], sr.pending[sr.off:]...)
		sr.off = 0
	}
	for len(sr.pending) < n {
		b, err := sr.r.ReadByte()
		if err != nil {
			return sr.pending, err
		}
		sr.pending = append(sr.pending, b)
	}
	return sr.pending[:n], nil
}

// readFull fills buf, consuming pending bytes first.
func (sr *StreamReader) readFull(buf []byte) (int, error) {
	n := copy(buf, sr.pending[sr.off:])
	sr.off += n
	if sr.off == len(sr.pending) {
		sr.pending, sr.off = sr.pending[:0], 0
	}
	if n == len(buf) {
		return n, nil
	}
	m, err := io.ReadFull(sr.r, buf[n:])
	return n + m, err
}

// pushBack returns data to the front of the read sequence. Unlike a stacked
// MultiReader, the pending buffer is bounded: repeated push-backs on a
// garbage-heavy link reuse the same storage instead of nesting readers.
func (sr *StreamReader) pushBack(data []byte) {
	rest := sr.pending[sr.off:]
	if len(rest) == 0 {
		sr.pending = append(sr.pending[:0], data...)
		sr.off = 0
		return
	}
	merged := make([]byte, 0, len(data)+len(rest))
	merged = append(merged, data...)
	merged = append(merged, rest...)
	sr.pending, sr.off = merged, 0
}

// drainAll consumes the rest of the stream, returning the byte count and any
// non-EOF error.
func (sr *StreamReader) drainAll() (int, error) {
	n := len(sr.pending) - sr.off
	sr.pending, sr.off = sr.pending[:0], 0
	for {
		m, err := sr.r.Discard(32 << 10)
		n += m
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
	}
}

// ReadPacket scans for the next valid packet. It returns io.EOF only at a
// clean end of stream; underlying transport errors are returned wrapped.
func (sr *StreamReader) ReadPacket() (*Packet, error) {
	var p Packet
	if err := sr.ReadPacketInto(&p); err != nil {
		return nil, err
	}
	return &p, nil
}

// ReadPacketInto scans for the next valid packet and parses it into p,
// reusing p's sample storage and the reader's internal frame scratch. The
// parsed samples alias p's previous backing arrays; callers that retain
// packets across calls must use distinct Packet values.
func (sr *StreamReader) ReadPacketInto(p *Packet) error {
	bad := 0
	for {
		// Hunt for the magic word.
		b0, err := sr.readByte()
		if err != nil {
			return wrapErr(err)
		}
		if b0 != byte(PacketMagic>>8) {
			sr.SkippedBytes++
			continue
		}
		peek, err := sr.peek(1)
		if err != nil {
			// Lone magic-high byte at the very end of the stream.
			sr.SkippedBytes++
			return wrapErr(err)
		}
		if peek[0] != byte(PacketMagic&0xFF) {
			sr.SkippedBytes++
			continue
		}
		// Candidate frame: peek the header to learn the length.
		hdr, err := sr.peek(headerBytes - 1)
		if err != nil {
			if err != io.EOF {
				return wrapErr(err)
			}
			// Truncated final frame: everything left is trailing garbage.
			sr.SkippedBytes++
			n, derr := sr.drainAll()
			sr.SkippedBytes += n
			if derr != nil {
				return wrapErr(derr)
			}
			return io.EOF
		}
		samples := hdr[headerBytes-2]
		total := headerBytes + 2*ChannelsPerASIC*int(samples) + 2
		if cap(sr.frame) < total {
			sr.frame = make([]byte, total)
		}
		frame := sr.frame[:total]
		frame[0] = b0
		if n, err := sr.readFull(frame[1:]); err != nil {
			if err != io.EOF && err != io.ErrUnexpectedEOF {
				return wrapErr(err)
			}
			// Stream ended mid-frame: a truncated tail, not a fault.
			sr.SkippedBytes += 1 + n
			return io.EOF
		}
		if _, err := p.Unmarshal(frame); err != nil {
			// Corrupted frame: count it, resume the hunt right after the
			// magic word so an embedded valid packet is still found.
			sr.BadPackets++
			sr.pushBack(frame[2:])
			sr.SkippedBytes += 2
			if bad++; sr.BadPacketBudget > 0 && bad >= sr.BadPacketBudget {
				return fmt.Errorf("%w: %d corrupted frames in one read", ErrResyncStorm, bad)
			}
			continue
		}
		return nil
	}
}

// ErrIncompleteEvent reports that an event could not be assembled because
// the stream ended or packets were missing.
var ErrIncompleteEvent = errors.New("adapt: incomplete event")

// ErrResyncStorm is returned when a read exhausts StreamReader.
// BadPacketBudget without finding a valid packet. The stream is still
// usable; the caller decides whether to keep hunting or cut the link.
var ErrResyncStorm = errors.New("adapt: resync storm")

// ReadEvent collects the next `asics` packets that share one event id.
// Packets from other events encountered mid-assembly are an error (the
// readout interleaves per event).
func (sr *StreamReader) ReadEvent(asics int) ([]Packet, error) {
	return sr.ReadEventInto(nil, asics)
}

// ReadEventInto is ReadEvent with storage reuse: dst's backing array (and the
// sample arrays of the packets it holds) are recycled when capacity allows.
//
// When assembly is interrupted by a valid packet carrying a different event
// id, ErrIncompleteEvent is returned and that packet is retained: the next
// call starts the new assembly from it. This bounds the damage of a lost or
// corrupted packet to exactly one event — without retention the interrupting
// packet would be consumed and every subsequent event would lose its first
// packet in turn, an unbounded resync cascade.
func (sr *StreamReader) ReadEventInto(dst []Packet, asics int) ([]Packet, error) {
	if asics < 1 {
		return nil, fmt.Errorf("adapt: ReadEvent needs asics >= 1")
	}
	if cap(dst) < asics {
		dst = make([]Packet, asics)
	}
	dst = dst[:asics]
	if sr.hasHeld {
		dst[0], sr.held = sr.held, dst[0]
		sr.hasHeld = false
	} else if err := sr.ReadPacketInto(&dst[0]); err != nil {
		return nil, err
	}
	for i := 1; i < asics; i++ {
		if err := sr.ReadPacketInto(&dst[i]); err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("%w: got %d of %d packets for event %d",
					ErrIncompleteEvent, i, asics, dst[0].Event)
			}
			return nil, fmt.Errorf("%w: after %d of %d packets for event %d: %w",
				ErrIncompleteEvent, i, asics, dst[0].Event, err)
		}
		if dst[i].Event != dst[0].Event {
			// Keep the interrupting packet (swap storage, don't copy) so the
			// next assembly resumes from it.
			sr.held, dst[i] = dst[i], sr.held
			sr.hasHeld = true
			return nil, fmt.Errorf("%w: event %d interrupted by packet from event %d",
				ErrIncompleteEvent, dst[0].Event, sr.held.Event)
		}
	}
	return dst, nil
}
