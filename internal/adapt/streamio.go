package adapt

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// Packet stream I/O: the serialized form in which digitizer packets travel
// over the readout link and are archived to disk. Packets are self-framing
// (magic word + header-derived length + checksum), so the reader can
// resynchronize after corrupted or truncated packets — the behaviour the
// FPGA's packet-handling stage needs on a real link.

// StreamWriter serializes packets back-to-back onto an io.Writer.
type StreamWriter struct {
	w io.Writer
	// Packets counts successfully written packets.
	Packets int
}

// NewStreamWriter returns a writer over w.
func NewStreamWriter(w io.Writer) *StreamWriter { return &StreamWriter{w: w} }

// WritePacket marshals and writes one packet.
func (sw *StreamWriter) WritePacket(p *Packet) error {
	buf, err := p.Marshal()
	if err != nil {
		return err
	}
	if _, err := sw.w.Write(buf); err != nil {
		return err
	}
	sw.Packets++
	return nil
}

// WriteEvent writes all packets of one event in ASIC order.
func (sw *StreamWriter) WriteEvent(packets []Packet) error {
	for i := range packets {
		if err := sw.WritePacket(&packets[i]); err != nil {
			return fmt.Errorf("adapt: event packet %d: %w", i, err)
		}
	}
	return nil
}

// StreamReader parses a packet stream, skipping garbage between packets.
type StreamReader struct {
	r *bufio.Reader
	// SkippedBytes counts bytes discarded while searching for a valid
	// packet (link noise, corrupted frames).
	SkippedBytes int
	// BadPackets counts frames that had a magic word but failed validation.
	BadPackets int
}

// NewStreamReader returns a reader over r.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// ReadPacket scans for the next valid packet. It returns io.EOF only at a
// clean end of stream (possibly after skipping trailing garbage).
func (sr *StreamReader) ReadPacket() (*Packet, error) {
	for {
		// Hunt for the magic word.
		b0, err := sr.r.ReadByte()
		if err != nil {
			return nil, io.EOF
		}
		if b0 != byte(PacketMagic>>8) {
			sr.SkippedBytes++
			continue
		}
		peek, err := sr.r.Peek(1)
		if err != nil {
			sr.SkippedBytes++
			return nil, io.EOF
		}
		if peek[0] != byte(PacketMagic&0xFF) {
			sr.SkippedBytes++
			continue
		}
		// Candidate frame: peek the header to learn the length.
		hdr, err := sr.r.Peek(headerBytes - 1)
		if err != nil {
			// Truncated final frame.
			sr.SkippedBytes += 1 + len(peekAvailable(sr.r))
			sr.discardAll()
			return nil, io.EOF
		}
		samples := hdr[headerBytes-2]
		total := headerBytes + 2*ChannelsPerASIC*int(samples) + 2
		frame := make([]byte, total)
		frame[0] = b0
		if _, err := io.ReadFull(sr.r, frame[1:]); err != nil {
			sr.SkippedBytes += total - 1
			return nil, io.EOF
		}
		var p Packet
		if _, err := p.Unmarshal(frame); err != nil {
			// Corrupted frame: count it, resume the hunt right after the
			// magic word so an embedded valid packet is still found.
			sr.BadPackets++
			sr.pushBack(frame[2:])
			sr.SkippedBytes += 2
			continue
		}
		return &p, nil
	}
}

// pushBack returns data to the reader's buffer by stacking a MultiReader.
func (sr *StreamReader) pushBack(data []byte) {
	rest := io.MultiReader(newSliceReader(data), sr.r)
	sr.r = bufio.NewReaderSize(rest, 64<<10)
}

func (sr *StreamReader) discardAll() {
	for {
		if _, err := sr.r.Discard(1); err != nil {
			return
		}
		sr.SkippedBytes++
	}
}

func peekAvailable(r *bufio.Reader) []byte {
	b, _ := r.Peek(r.Buffered())
	return b
}

// sliceReader is a minimal io.Reader over a byte slice (bytes.Reader would
// also do; this keeps the dependency surface explicit).
type sliceReader struct {
	data []byte
	off  int
}

func newSliceReader(data []byte) *sliceReader { return &sliceReader{data: data} }

func (s *sliceReader) Read(p []byte) (int, error) {
	if s.off >= len(s.data) {
		return 0, io.EOF
	}
	n := copy(p, s.data[s.off:])
	s.off += n
	return n, nil
}

// ErrIncompleteEvent reports that an event could not be assembled because
// the stream ended or packets were missing.
var ErrIncompleteEvent = errors.New("adapt: incomplete event")

// ReadEvent collects the next `asics` packets that share one event id.
// Packets from other events encountered mid-assembly are an error (the
// readout interleaves per event).
func (sr *StreamReader) ReadEvent(asics int) ([]Packet, error) {
	if asics < 1 {
		return nil, fmt.Errorf("adapt: ReadEvent needs asics >= 1")
	}
	first, err := sr.ReadPacket()
	if err != nil {
		return nil, err
	}
	packets := []Packet{*first}
	for len(packets) < asics {
		p, err := sr.ReadPacket()
		if err != nil {
			return nil, fmt.Errorf("%w: got %d of %d packets for event %d",
				ErrIncompleteEvent, len(packets), asics, first.Event)
		}
		if p.Event != first.Event {
			return nil, fmt.Errorf("%w: event %d interrupted by packet from event %d",
				ErrIncompleteEvent, first.Event, p.Event)
		}
		packets = append(packets, *p)
	}
	return packets, nil
}
