package adapt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
)

// Packet stream I/O: the serialized form in which digitizer packets travel
// over the readout link and are archived to disk. Packets are self-framing
// (magic word + header-derived length + checksum), so the reader can
// resynchronize after corrupted or truncated packets — the behaviour the
// FPGA's packet-handling stage needs on a real link.

// StreamWriter serializes packets back-to-back onto an io.Writer.
type StreamWriter struct {
	w io.Writer
	// Packets counts successfully written packets.
	Packets int
}

// NewStreamWriter returns a writer over w.
func NewStreamWriter(w io.Writer) *StreamWriter { return &StreamWriter{w: w} }

// WritePacket marshals and writes one packet.
func (sw *StreamWriter) WritePacket(p *Packet) error {
	buf, err := p.Marshal()
	if err != nil {
		return err
	}
	if _, err := sw.w.Write(buf); err != nil {
		return err
	}
	sw.Packets++
	return nil
}

// WriteEvent writes all packets of one event in ASIC order.
func (sw *StreamWriter) WriteEvent(packets []Packet) error {
	for i := range packets {
		if err := sw.WritePacket(&packets[i]); err != nil {
			return fmt.Errorf("adapt: event packet %d: %w", i, err)
		}
	}
	return nil
}

// StreamReader parses a packet stream, skipping garbage between packets.
//
// Decoding is zero-copy: candidate frames are validated and parsed in place
// inside the buffered read window (the largest frame, 255 samples/channel, is
// 8179 bytes — well under the 64 KiB window), so no frame is ever staged
// through an intermediate buffer, and resynchronization after a corrupted
// frame consumes two bytes instead of copying the frame into a push-back
// queue. The hunt for the frame magic scans the window a word at a time.
//
// End-of-stream vs transport faults: ReadPacket returns io.EOF only when the
// underlying reader reports a clean end of stream (possibly after skipping
// trailing garbage or a truncated final frame). Any other underlying error —
// a socket reset, a read deadline, an injected fault — is returned wrapped,
// so network servers can tell a closed connection from a failed one.
type StreamReader struct {
	r *bufio.Reader
	// held retains a valid packet that interrupted an event assembly (it
	// belongs to a later event); the next assembly starts from it instead of
	// re-reading the wire, so one lost packet costs exactly one event.
	held    Packet
	hasHeld bool
	// skim is SkimEvent's scratch packet: condemned frames park their headers
	// in it, and an interrupting packet is fully decoded into it before being
	// swapped into held.
	skim Packet
	// SkippedBytes counts bytes discarded while searching for a valid
	// packet (link noise, corrupted frames).
	SkippedBytes int
	// BadPackets counts frames that had a magic word but failed validation.
	BadPackets int
	// BadPacketBudget, when positive, bounds how many corrupted frames one
	// ReadPacket call will hunt past before returning ErrResyncStorm. Zero
	// hunts until a valid packet or end of stream. The error is recoverable
	// — a later call resumes the hunt — but it returns control to the
	// caller, which a pure-garbage link would otherwise never do.
	BadPacketBudget int
	// capturing, when set, makes each event assembly also accumulate the raw
	// wire bytes of its accepted frames in capture, so a recorder can append
	// exactly what was admitted without a second decode pass. Skipped garbage
	// and corrupted frames are never captured, and skimmed (condemned) events
	// are not captured either. heldRaw shadows held: when an interrupting
	// packet is retained for the next assembly, its wire bytes move from
	// capture to heldRaw so the next capture can replay them.
	capturing    bool
	capture      []byte
	heldRaw      []byte
	lastFrameLen int
}

// streamBufSize is the read window. It must exceed the largest possible
// frame so a whole candidate frame can always be peeked in place.
const streamBufSize = 64 << 10

// NewStreamReader returns a reader over r.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{r: bufio.NewReaderSize(r, streamBufSize)}
}

// Reset discards all buffered state, zeroes the counters, and switches the
// reader to r, retaining the internal buffer.
func (sr *StreamReader) Reset(r io.Reader) {
	sr.r.Reset(r)
	sr.hasHeld = false
	sr.SkippedBytes = 0
	sr.BadPackets = 0
	sr.capture = sr.capture[:0]
	sr.heldRaw = sr.heldRaw[:0]
	sr.lastFrameLen = 0
}

// SetCapture toggles raw-frame capture. While on, every successful
// ReadEventInto leaves the event's exact wire bytes in Captured.
func (sr *StreamReader) SetCapture(on bool) { sr.capturing = on }

// Captured returns the raw wire bytes of the frames accepted by the last
// successful event assembly, in stream order. The slice is reused by the next
// assembly; copy it to retain it.
func (sr *StreamReader) Captured() []byte { return sr.capture }

// stashHeldRaw moves the interrupting frame's wire bytes (the last frame
// appended to capture) into heldRaw, mirroring the held-packet swap.
//
//hepccl:coldpath
func (sr *StreamReader) stashHeldRaw() {
	n := len(sr.capture) - sr.lastFrameLen
	sr.heldRaw = append(sr.heldRaw[:0], sr.capture[n:]...)
	sr.capture = sr.capture[:n]
}

// wrapErr passes io.EOF through untouched and wraps everything else.
//
//hepccl:coldpath
func wrapErr(err error) error {
	if err == io.EOF {
		return io.EOF
	}
	return fmt.Errorf("adapt: stream read: %w", err)
}

const (
	magicHi = byte(PacketMagic >> 8)   // 0xA1, first byte on the wire
	magicLo = byte(PacketMagic & 0xFF) // 0xFA, second byte on the wire
)

// scanMagic returns the index of the first magic pair in buf, or -1. The hot
// loop tests eight bytes per iteration: a SWAR zero-byte detect on buf^0xA1…
// marks candidate high bytes, and only candidates pay the pair check. The
// loop walks by shrinking the slice head — constant-index loads the compiler
// proves in range without induction, which early returns would break.
//
//hepccl:hotpath
func scanMagic(buf []byte) int {
	const (
		lanes = 0x0101010101010101
		highs = 0x8080808080808080
		hiRep = 0xA1A1A1A1A1A1A1A1
	)
	base := 0
	b := buf
	// len >= 9 keeps the pair byte in range for a candidate anywhere in the
	// word, including lane 7, whose partner is b[8].
	for len(b) >= 9 {
		w := binary.LittleEndian.Uint64(b[:8])
		x := w ^ hiRep
		m := (x - lanes) & ^x & highs
		for m != 0 {
			k := bits.TrailingZeros64(m) >> 3
			// The zero-byte detect over-approximates across borrow ripples
			// (a lane one above an exact match is falsely flagged), so
			// re-verify the candidate in-register before the pair test.
			if byte(w>>(uint(k)*8)) == magicHi {
				var next byte
				if k == 7 {
					next = b[8]
				} else {
					next = byte(w >> (uint(k+1) * 8))
				}
				if next == magicLo {
					return base + k
				}
			}
			m &= m - 1
		}
		b = b[8:]
		base += 8
	}
	if len(b) >= 2 {
		ta := b[:len(b)-1]
		tb := b[1:]
		for k, c := range ta {
			if c == magicHi && tb[k] == magicLo {
				return base + k
			}
		}
	}
	return -1
}

// drainAll consumes the rest of the stream, returning the byte count and any
// non-EOF error.
func (sr *StreamReader) drainAll() (int, error) {
	n := 0
	for {
		m, err := sr.r.Discard(32 << 10)
		n += m
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
	}
}

// ReadPacket scans for the next valid packet. It returns io.EOF only at a
// clean end of stream; underlying transport errors are returned wrapped.
func (sr *StreamReader) ReadPacket() (*Packet, error) {
	var p Packet
	if err := sr.ReadPacketInto(&p); err != nil {
		return nil, err
	}
	return &p, nil
}

// ReadPacketInto scans for the next valid packet and parses it into p,
// reusing p's sample storage. The frame is validated and decoded directly
// from the read window — nothing is copied until the checksum passes, and a
// failed candidate costs a two-byte skip, not a frame copy. The parsed
// samples alias p's previous backing arrays; callers that retain packets
// across calls must use distinct Packet values.
func (sr *StreamReader) ReadPacketInto(p *Packet) error {
	return sr.readPacketInto(p, false, false, 0)
}

// readPacketInto implements ReadPacketInto. With skim set, a framed packet
// whose event id equals event (or any framed packet, when haveEvent is false)
// is consumed on its header alone — no checksum, no decode — because the
// caller is skimming a condemned event. A frame with a different id is
// verified and decoded in full, because it interrupts the skim and will be
// retained for the next real assembly.
//
//hepccl:hotpath
func (sr *StreamReader) readPacketInto(p *Packet, skim, haveEvent bool, event uint32) error {
	bad := 0
	for {
		// Fast path: an in-sync stream has the next frame's magic already at
		// the front of the window, so peek the header directly — one bounds
		// check and two byte compares — and only fall into the hunt when the
		// stream is out of sync or ending.
		hdr, err := sr.r.Peek(headerBytes)
		// bufio.Peek returns err == nil only with all headerBytes present —
		// an I/O contract outside compiler range proofs.
		//hepccl:checked
		if err != nil || hdr[0] != magicHi || hdr[1] != magicLo {
			if len(hdr) >= 2 && hdr[0] == magicHi && hdr[1] == magicLo {
				// Aligned frame but the header itself is truncated.
				if err != io.EOF {
					return wrapErr(err)
				}
				// Truncated final frame: everything left is trailing garbage.
				n, derr := sr.drainAll()
				sr.SkippedBytes += n
				if derr != nil {
					return wrapErr(derr)
				}
				return io.EOF
			}
			if len(hdr) < 2 {
				if err == io.EOF {
					// A lone trailing byte is garbage no matter what it is.
					sr.SkippedBytes += len(hdr)
					sr.r.Discard(len(hdr))
					return io.EOF
				}
				return wrapErr(err)
			}
			// Out of sync: hunt over everything already buffered. scanMagic
			// cannot return 0 here (the window's first pair was just rejected),
			// so a hit always discards garbage before re-entering the fast path.
			win := hdr
			if n := sr.r.Buffered(); n > len(win) {
				win, _ = sr.r.Peek(n)
			}
			at := scanMagic(win)
			if at < 0 {
				// No pair in the window. Everything is garbage except a trailing
				// magic-high byte, which may pair with the next window's first.
				n := len(win)
				// n > 0 always holds (the window held a rejected pair); the
				// explicit guard is what lets the compiler drop the check.
				if n > 0 && win[n-1] == magicHi {
					n--
				}
				sr.SkippedBytes += n
				sr.r.Discard(n)
				continue
			}
			sr.SkippedBytes += at
			sr.r.Discard(at)
			continue
		}
		// The fast path reaches here only with err == nil, so Peek's
		// contract pins len(hdr) == headerBytes.
		//hepccl:checked
		samples := hdr[headerBytes-1]
		total := headerBytes + 2*ChannelsPerASIC*int(samples) + 2
		frame, err := sr.r.Peek(total)
		if err != nil {
			if err != io.EOF && err != io.ErrUnexpectedEOF {
				return wrapErr(err)
			}
			// Stream ended mid-frame: a truncated tail, not a fault.
			sr.SkippedBytes += len(frame)
			sr.r.Discard(len(frame))
			return io.EOF
		}
		if skim {
			// Peek succeeded, so len(frame) == total ≥ headerBytes.
			//hepccl:checked
			if ev := binary.BigEndian.Uint32(frame[4:]); !haveEvent || ev == event {
				// Condemned frame: framing only — no checksum, no decode.
				// The event is dropped either way, so payload corruption is
				// indistinguishable from a clean drop; a corrupted header
				// that misframes the stream is recovered by the magic hunt
				// on the next call, bounded to one event by the assembly's
				// event-id check.
				p.Magic = PacketMagic
				p.ASIC = frame[2]
				p.Flags = frame[3]
				p.Event = ev
				// Same Peek contract as the event-id load above.
				//hepccl:checked
				p.Timestamp = binary.BigEndian.Uint64(frame[8:])
				p.SamplesPerChannel = samples
				sr.r.Discard(total)
				return nil
			}
		}
		if _, uerr := p.Unmarshal(frame); uerr != nil {
			// Corrupted frame: count it, resume the hunt right after the
			// magic word so an embedded valid packet is still found. The
			// frame's bytes were never consumed, so resync is a 2-byte skip.
			sr.BadPackets++
			sr.r.Discard(2)
			sr.SkippedBytes += 2
			//hepccl:coldpath
			if bad++; sr.BadPacketBudget > 0 && bad >= sr.BadPacketBudget {
				return fmt.Errorf("%w: %d corrupted frames in one read", ErrResyncStorm, bad)
			}
			continue
		}
		if sr.capturing {
			// The window slice dies at Discard, so the copy happens here.
			//hepccl:amortized
			sr.capture = append(sr.capture, frame...)
			sr.lastFrameLen = total
		}
		sr.r.Discard(total)
		return nil
	}
}

// ErrIncompleteEvent reports that an event could not be assembled because
// the stream ended or packets were missing.
var ErrIncompleteEvent = errors.New("adapt: incomplete event")

// ErrResyncStorm is returned when a read exhausts StreamReader.
// BadPacketBudget without finding a valid packet. The stream is still
// usable; the caller decides whether to keep hunting or cut the link.
var ErrResyncStorm = errors.New("adapt: resync storm")

// SkimEvent consumes the next event's packets with the same framing, resync,
// and held-packet behaviour as ReadEventInto, but touches nothing beyond each
// frame's header: no checksum verification and no sample decode. It exists
// for the saturated-ingest case where the caller has already decided the
// event will be dropped (derandomizer full under drop policy) — the hardware
// analogue is a full derandomizer FIFO, which never inspects the trigger it
// refuses. Payload corruption inside a skimmed event therefore goes uncounted
// (the event is a loss either way), while header corruption that misframes
// the stream is still recovered by the magic-hunt resync and bounded to one
// event. A packet from a different event interrupts the skim; it is verified,
// fully decoded, and retained for the next assembly. Returns the skimmed
// event id.
//
//hepccl:hotpath
func (sr *StreamReader) SkimEvent(asics int) (uint32, error) {
	//hepccl:coldpath
	if asics < 1 {
		return 0, fmt.Errorf("adapt: SkimEvent needs asics >= 1")
	}
	sr.capture = sr.capture[:0]
	if sr.hasHeld {
		sr.skim, sr.held = sr.held, sr.skim
		sr.hasHeld = false
	} else if err := sr.readPacketInto(&sr.skim, true, false, 0); err != nil {
		return 0, err
	}
	event := sr.skim.Event
	for i := 1; i < asics; {
		// Fast path: an in-sync stream has the event's remaining frames
		// back-to-back in the read window. Walk as many contiguous, fully
		// buffered frames of this event as the window holds and consume them
		// with one Discard, instead of paying two Peeks and a Discard per
		// frame. Any anomaly — short window, bad magic, other event — leaves
		// the stream untouched past the clean prefix and falls back to the
		// general path, which owns resync, EOF, and interruption handling.
		if n := sr.r.Buffered(); n >= headerBytes {
			win, _ := sr.r.Peek(n)
			// The walk shrinks the window head instead of indexing at a
			// running offset: every load is at a constant index under the
			// len(win) >= headerBytes guard, so the compiler drops all
			// checks the offset form would retain.
			off := 0
			for i < asics && len(win) >= headerBytes {
				h := win
				if h[0] != magicHi || h[1] != magicLo ||
					binary.BigEndian.Uint32(h[4:]) != event {
					break
				}
				total := headerBytes + 2*ChannelsPerASIC*int(h[headerBytes-1]) + 2
				if len(win) < total {
					break
				}
				win = win[total:]
				off += total
				i++
			}
			if off > 0 {
				sr.r.Discard(off)
				continue
			}
		}
		if err := sr.readPacketInto(&sr.skim, true, true, event); err != nil {
			//hepccl:coldpath
			if err == io.EOF {
				return event, fmt.Errorf("%w: got %d of %d packets for event %d",
					ErrIncompleteEvent, i, asics, event)
			}
			//hepccl:coldpath
			return event, fmt.Errorf("%w: after %d of %d packets for event %d: %w",
				ErrIncompleteEvent, i, asics, event, err)
		}
		if sr.skim.Event != event {
			// Keep the interrupting packet (swap storage, don't copy) so the
			// next assembly resumes from it. Its wire bytes were captured by
			// the full decode; move them alongside.
			sr.held, sr.skim = sr.skim, sr.held
			sr.hasHeld = true
			if sr.capturing {
				//hepccl:coldpath
				sr.stashHeldRaw()
			}
			//hepccl:coldpath
			return event, fmt.Errorf("%w: event %d interrupted by packet from event %d",
				ErrIncompleteEvent, event, sr.held.Event)
		}
		i++
	}
	return event, nil
}

// ReadEvent collects the next `asics` packets that share one event id.
// Packets from other events encountered mid-assembly are an error (the
// readout interleaves per event).
func (sr *StreamReader) ReadEvent(asics int) ([]Packet, error) {
	return sr.ReadEventInto(nil, asics)
}

// ReadEventInto is ReadEvent with storage reuse: dst's backing array (and the
// sample arrays of the packets it holds) are recycled when capacity allows.
//
// When assembly is interrupted by a valid packet carrying a different event
// id, ErrIncompleteEvent is returned and that packet is retained: the next
// call starts the new assembly from it. This bounds the damage of a lost or
// corrupted packet to exactly one event — without retention the interrupting
// packet would be consumed and every subsequent event would lose its first
// packet in turn, an unbounded resync cascade.
//
//hepccl:hotpath
func (sr *StreamReader) ReadEventInto(dst []Packet, asics int) ([]Packet, error) {
	//hepccl:coldpath
	if asics < 1 {
		return nil, fmt.Errorf("adapt: ReadEvent needs asics >= 1")
	}
	//hepccl:amortized
	if cap(dst) < asics {
		dst = make([]Packet, asics)
	}
	dst = dst[:asics]
	sr.capture = sr.capture[:0]
	if sr.hasHeld {
		dst[0], sr.held = sr.held, dst[0]
		sr.hasHeld = false
		if sr.capturing {
			// Replay the retained packet's wire bytes into this capture.
			//hepccl:amortized
			sr.capture = append(sr.capture, sr.heldRaw...)
			sr.lastFrameLen = len(sr.heldRaw)
		}
	} else if err := sr.ReadPacketInto(&dst[0]); err != nil {
		return nil, err
	}
	for i := 1; i < asics; i++ {
		if err := sr.ReadPacketInto(&dst[i]); err != nil {
			//hepccl:coldpath
			if err == io.EOF {
				return nil, fmt.Errorf("%w: got %d of %d packets for event %d",
					ErrIncompleteEvent, i, asics, dst[0].Event)
			}
			//hepccl:coldpath
			return nil, fmt.Errorf("%w: after %d of %d packets for event %d: %w",
				ErrIncompleteEvent, i, asics, dst[0].Event, err)
		}
		if dst[i].Event != dst[0].Event {
			// Keep the interrupting packet (swap storage, don't copy) so the
			// next assembly resumes from it.
			sr.held, dst[i] = dst[i], sr.held
			sr.hasHeld = true
			if sr.capturing {
				//hepccl:coldpath
				sr.stashHeldRaw()
			}
			//hepccl:coldpath
			return nil, fmt.Errorf("%w: event %d interrupted by packet from event %d",
				ErrIncompleteEvent, dst[0].Event, sr.held.Event)
		}
	}
	return dst, nil
}
