package adapt

import (
	"fmt"
	"math"
	"sort"

	"github.com/wustl-adapt/hepccl/internal/design"
)

// Instrument models one ADAPT tracker station: two identical FPGA pipelines
// reading perpendicular 1D fiber layers — "ADAPT's 2D spatial reconstruction
// uses perpendicular 1D arrays of optical fibers" (§2). The event builder
// pairs X-layer and Y-layer islands into 2D interaction points: deposits
// from one interaction split their light between the planes, so paired
// islands have correlated energies.
type Instrument struct {
	// X measures column positions; Y measures row positions.
	X, Y *Pipeline
}

// NewInstrument builds a station from one pipeline configuration, which must
// be in 1D mode (each layer is a 1D array).
func NewInstrument(cfg Config) (*Instrument, error) {
	if cfg.Detection.TwoDimension {
		return nil, fmt.Errorf("adapt: instrument layers must use 1D island detection")
	}
	x, err := New(cfg)
	if err != nil {
		return nil, err
	}
	y, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Instrument{X: x, Y: y}, nil
}

// Point2D is one reconstructed interaction.
type Point2D struct {
	// Row, Col are the reconstructed coordinates (Y- and X-layer centroids).
	Row, Col float64
	// EnergyX, EnergyY are the paired island energies.
	EnergyX, EnergyY int64
	// Balance is the energy symmetry min/max in (0,1]; well-matched pairs
	// sit near the plane-sharing ratio (~1), mispairings fall low.
	Balance float64
}

// StationEvent is the event builder's output for one trigger.
type StationEvent struct {
	Event uint32
	// Points are the paired interactions, brightest first.
	Points []Point2D
	// UnpairedX, UnpairedY count islands left without a partner.
	UnpairedX, UnpairedY int
}

// ProcessEvent runs both layers' packets through their pipelines and builds
// 2D points. Both packet sets must carry the same event id.
func (ins *Instrument) ProcessEvent(xPackets, yPackets []Packet) (*StationEvent, error) {
	xr, err := ins.X.ProcessEvent(xPackets)
	if err != nil {
		return nil, fmt.Errorf("adapt: X layer: %w", err)
	}
	yr, err := ins.Y.ProcessEvent(yPackets)
	if err != nil {
		return nil, fmt.Errorf("adapt: Y layer: %w", err)
	}
	if xr.Event != yr.Event {
		return nil, fmt.Errorf("adapt: layer event ids differ: %d vs %d", xr.Event, yr.Event)
	}
	ev := &StationEvent{Event: xr.Event}

	// Sort both layers' islands by energy, descending: the light-sharing
	// model makes energy rank the pairing key (§2's event building).
	xi := append([]design.Island1D(nil), xr.OneD.Islands...)
	yi := append([]design.Island1D(nil), yr.OneD.Islands...)
	sort.Slice(xi, func(i, j int) bool { return xi[i].Sum > xi[j].Sum })
	sort.Slice(yi, func(i, j int) bool { return yi[i].Sum > yi[j].Sum })
	pairs := min(len(xi), len(yi))
	for k := 0; k < pairs; k++ {
		balance := float64(min64(xi[k].Sum, yi[k].Sum)) / float64(max64(xi[k].Sum, yi[k].Sum))
		ev.Points = append(ev.Points, Point2D{
			Row:     yi[k].Centroid,
			Col:     xi[k].Centroid,
			EnergyX: xi[k].Sum,
			EnergyY: yi[k].Sum,
			Balance: balance,
		})
	}
	ev.UnpairedX = len(xi) - pairs
	ev.UnpairedY = len(yi) - pairs
	return ev, nil
}

// EventsPerSecond is the station rate: both layer pipelines run in parallel,
// so the station sustains the single-layer rate.
func (ins *Instrument) EventsPerSecond() float64 {
	x := ins.X.EventsPerSecond()
	y := ins.Y.EventsPerSecond()
	return math.Min(x, y)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
