package adapt

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"github.com/wustl-adapt/hepccl/internal/detector"
)

// rawTestEvents digitizes n small events and returns them both as packets
// and as their marshaled wire images.
func rawTestEvents(t *testing.T, n, asics int) ([][]Packet, [][]byte) {
	t.Helper()
	cfg := DefaultADAPT()
	cfg.ASICs = asics
	cfg.SamplesPerChannel = 4
	rng := detector.NewRNG(7)
	dig := detector.DefaultDigitizer()
	dig.Samples = cfg.SamplesPerChannel
	tracker := detector.DefaultTracker()
	tracker.Channels = cfg.ASICs * ChannelsPerASIC
	tracker.Threshold = 0
	events := make([][]Packet, n)
	wires := make([][]byte, n)
	for i := range events {
		ev, err := GenerateEvent(tracker.Event(rng).Values, cfg.ASICs,
			uint32(i), uint64(i), dig, rng)
		if err != nil {
			t.Fatal(err)
		}
		events[i] = ev
		var buf []byte
		for p := range ev {
			b, err := ev[p].Marshal()
			if err != nil {
				t.Fatal(err)
			}
			buf = append(buf, b...)
		}
		wires[i] = buf
	}
	return events, wires
}

func TestRawEventReaderCleanStream(t *testing.T) {
	const asics = 4
	_, wires := rawTestEvents(t, 8, asics)
	var stream []byte
	for _, w := range wires {
		stream = append(stream, w...)
	}
	rr := NewRawEventReader(bytes.NewReader(stream))
	var buf []byte
	for i, want := range wires {
		ev, got, err := rr.ReadEventInto(buf, asics)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev != uint32(i) {
			t.Fatalf("event %d: id %d", i, ev)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("event %d: raw bytes differ (%d vs %d bytes)", i, len(got), len(want))
		}
		buf = got
	}
	if _, _, err := rr.ReadEventInto(buf, asics); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestRawEventReaderResyncAndGarbage(t *testing.T) {
	const asics = 3
	_, wires := rawTestEvents(t, 3, asics)
	var stream []byte
	stream = append(stream, []byte{0xde, 0xad, 0xbe, 0xef}...) // leading garbage
	stream = append(stream, wires[0]...)
	stream = append(stream, 0xA1) // lone magic-high byte between events
	stream = append(stream, wires[1]...)
	stream = append(stream, wires[2][:37]...) // truncated final frame
	rr := NewRawEventReader(bytes.NewReader(stream))
	var buf []byte
	for i := 0; i < 2; i++ {
		ev, got, err := rr.ReadEventInto(buf, asics)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev != uint32(i) || !bytes.Equal(got, wires[i]) {
			t.Fatalf("event %d: id=%d bytes ok=%v", i, ev, bytes.Equal(got, wires[i]))
		}
		buf = got
	}
	// The truncated tail ends the stream: incomplete event, then EOF.
	if _, _, err := rr.ReadEventInto(buf, asics); !errors.Is(err, ErrIncompleteEvent) && err != io.EOF {
		t.Fatalf("want incomplete/EOF on truncated tail, got %v", err)
	}
	if rr.SkippedBytes == 0 {
		t.Fatal("expected skipped bytes from garbage and truncation")
	}
}

func TestRawEventReaderInterruption(t *testing.T) {
	const asics = 4
	_, wires := rawTestEvents(t, 3, asics)
	frame := func(i, j int) []byte {
		// All frames share one geometry, so split evenly.
		sz := len(wires[i]) / asics
		return wires[i][j*sz : (j+1)*sz]
	}
	// Event 0 loses its last frame; event 1 arrives complete.
	var stream []byte
	for j := 0; j < asics-1; j++ {
		stream = append(stream, frame(0, j)...)
	}
	stream = append(stream, wires[1]...)
	rr := NewRawEventReader(bytes.NewReader(stream))
	_, buf, err := rr.ReadEventInto(nil, asics)
	if !errors.Is(err, ErrIncompleteEvent) {
		t.Fatalf("want ErrIncompleteEvent, got %v", err)
	}
	if len(buf) != 0 {
		t.Fatalf("partial event must return empty bytes, got %d", len(buf))
	}
	// The interrupting frame was retained: event 1 reassembles completely.
	ev, got, err := rr.ReadEventInto(buf, asics)
	if err != nil {
		t.Fatalf("event after interruption: %v", err)
	}
	if ev != 1 || !bytes.Equal(got, wires[1]) {
		t.Fatalf("retained-frame reassembly failed: id=%d equal=%v", ev, bytes.Equal(got, wires[1]))
	}
}

func TestRecordScannerRoundTrip(t *testing.T) {
	recs := []EventRecord{
		{Event: 0, Islands: []IslandRecord{{Label: 1, Pixels: 3, Sum: 42, RowQ16: 1 << 16, ColQ16: 2 << 16}}},
		{Event: 1},
		{Event: 2, Islands: []IslandRecord{
			{Label: 1, Pixels: 2, Sum: 7, RowQ16: 0, ColQ16: 0},
			{Label: 2, Pixels: 5, Sum: 99, RowQ16: 3 << 15, ColQ16: 1 << 14},
		}},
	}
	var stream []byte
	var wires [][]byte
	for i := range recs {
		w := recs[i].Marshal()
		wires = append(wires, w)
		stream = append(stream, w...)
	}
	rs := NewRecordScanner(bytes.NewReader(stream), nil)
	for i, want := range wires {
		got, err := rs.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: bytes differ", i)
		}
		if RecordEventID(got) != recs[i].Event || RecordIslandCount(got) != len(recs[i].Islands) {
			t.Fatalf("record %d: header fields wrong", i)
		}
	}
	if _, err := rs.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	if rs.Records != len(recs) || rs.Islands != 3 {
		t.Fatalf("counters: records=%d islands=%d", rs.Records, rs.Islands)
	}
}

func TestRecordScannerMidRecordEOF(t *testing.T) {
	rec := EventRecord{Event: 9, Islands: []IslandRecord{{Label: 1, Pixels: 1, Sum: 1}}}
	w := rec.Marshal()
	rs := NewRecordScanner(bytes.NewReader(w[:len(w)-3]), nil)
	if _, err := rs.Next(); err == nil || err == io.EOF {
		t.Fatalf("mid-record EOF must be an error, got %v", err)
	}
}

// countingDeadliner records SetReadDeadline calls.
type countingDeadliner struct{ n int }

func (c *countingDeadliner) SetReadDeadline(time.Time) error { c.n++; return nil }

func TestDeadlineRearmerCadence(t *testing.T) {
	c := &countingDeadliner{}
	d := NewDeadlineRearmer(c, time.Second)
	for i := 0; i < 3*DeadlineRearmEvery; i++ {
		if err := d.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if c.n != 3 {
		t.Fatalf("re-armed %d times over 3 windows, want 3", c.n)
	}
	// Zero timeout: no calls.
	c2 := &countingDeadliner{}
	d2 := NewDeadlineRearmer(c2, 0)
	for i := 0; i < 10; i++ {
		d2.Tick()
	}
	if c2.n != 0 {
		t.Fatalf("zero-timeout rearmer armed %d times", c2.n)
	}
}
