package adapt

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Transmit stage: event results are packed into compact records for the
// downlink (Fig 3's final "Transmit" box). Position centroids use Q16.16
// fixed point, since the FPGA has no floating-point downlink format.

// IslandRecord is one island's downlink summary.
type IslandRecord struct {
	// Label is the island id within the event.
	Label int32
	// Pixels is the island's pixel count. 32 bits: megapixel frame
	// geometries can concentrate more than 65535 pixels in one island.
	Pixels uint32
	// Sum is the total integrated value.
	Sum int64
	// RowQ16, ColQ16 are the centroid coordinates in Q16.16 fixed point.
	RowQ16, ColQ16 int32
}

// Row returns the centroid row as a float.
func (r IslandRecord) Row() float64 { return float64(r.RowQ16) / 65536 }

// Col returns the centroid column as a float.
func (r IslandRecord) Col() float64 { return float64(r.ColQ16) / 65536 }

// ToQ16 converts a coordinate to Q16.16, saturating at the format bounds.
func ToQ16(v float64) int32 {
	s := v * 65536
	switch {
	case s > math.MaxInt32:
		return math.MaxInt32
	case s < math.MinInt32:
		return math.MinInt32
	default:
		return int32(math.Round(s))
	}
}

// EventRecord is the downlink record of one processed event.
type EventRecord struct {
	Event   uint32
	Islands []IslandRecord
}

// RecordOf converts a pipeline result into its downlink record.
func RecordOf(res *EventResult) EventRecord {
	rec := EventRecord{Event: res.Event}
	switch {
	case res.OneD != nil:
		for _, is := range res.OneD.Islands {
			rec.Islands = append(rec.Islands, IslandRecord{
				Label:  int32(len(rec.Islands) + 1),
				Pixels: uint32(is.Width()),
				Sum:    is.Sum,
				RowQ16: 0,
				ColQ16: ToQ16(is.Centroid),
			})
		}
	case res.HardwareCentroids != nil:
		// 2D mode: the downlink carries the streaming centroid stage's
		// fixed-point output directly — no float ever exists on the FPGA.
		for _, c := range res.HardwareCentroids.Centroids {
			rec.Islands = append(rec.Islands, IslandRecord{
				Label:  c.Label,
				Pixels: uint32(c.Pixels),
				Sum:    c.Sum,
				RowQ16: c.RowQ16,
				ColQ16: c.ColQ16,
			})
		}
	default:
		for i, c := range res.Centroids {
			rec.Islands = append(rec.Islands, IslandRecord{
				Label:  c.Label,
				Pixels: uint32(res.Islands[i].Size()),
				Sum:    c.Sum,
				RowQ16: ToQ16(c.Row),
				ColQ16: ToQ16(c.Col),
			})
		}
	}
	return rec
}

// Marshal serializes the record: event id, island count, then fixed-size
// island entries, all big-endian.
func (rec *EventRecord) Marshal() []byte {
	return rec.AppendTo(make([]byte, 0, RecordHeaderBytes+RecordIslandBytes*len(rec.Islands)))
}

// AppendTo serializes the record onto buf, reusing its capacity.
//
//hepccl:hotpath
func (rec *EventRecord) AppendTo(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, rec.Event)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(rec.Islands)))
	for _, is := range rec.Islands {
		buf = binary.BigEndian.AppendUint32(buf, uint32(is.Label))
		buf = binary.BigEndian.AppendUint32(buf, is.Pixels)
		buf = binary.BigEndian.AppendUint64(buf, uint64(is.Sum))
		buf = binary.BigEndian.AppendUint32(buf, uint32(is.RowQ16))
		buf = binary.BigEndian.AppendUint32(buf, uint32(is.ColQ16))
	}
	return buf
}

// UnmarshalEventRecord parses a downlink record.
func UnmarshalEventRecord(data []byte) (EventRecord, error) {
	var rec EventRecord
	if len(data) < 8 {
		return rec, fmt.Errorf("adapt: truncated event record")
	}
	rec.Event = binary.BigEndian.Uint32(data)
	n := int(binary.BigEndian.Uint32(data[4:]))
	const entry = RecordIslandBytes
	if len(data) < 8+n*entry {
		return rec, fmt.Errorf("adapt: event record claims %d islands, payload too short", n)
	}
	off := 8
	for i := 0; i < n; i++ {
		rec.Islands = append(rec.Islands, IslandRecord{
			Label:  int32(binary.BigEndian.Uint32(data[off:])),
			Pixels: binary.BigEndian.Uint32(data[off+4:]),
			Sum:    int64(binary.BigEndian.Uint64(data[off+8:])),
			RowQ16: int32(binary.BigEndian.Uint32(data[off+16:])),
			ColQ16: int32(binary.BigEndian.Uint32(data[off+20:])),
		})
		off += entry
	}
	return rec, nil
}
