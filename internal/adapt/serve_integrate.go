package adapt

import "unsafe"

// integrateEvent runs integration + zero-suppression over every packet of an
// event, appending each channel whose raw integral reaches its suppression
// limit to lit. limits is the pipeline's full per-flat-channel limit table.
// This is the innermost serving loop: per event it visits thousands of dark
// channels to find a few dozen lit ones, so the per-channel work is one sum
// and one compare, and the whole event is a single call.
//
// Packets carrying a contiguous 4-sample block (the wire-parse and generator
// layout) take the word-at-a-time path: when the block is 8-byte aligned
// (heap []int32 backing arrays are in practice; the scalar path covers the
// remainder), each channel is read as two uint64 words of two int32 lanes
// each. The Packet.block invariant — every sample non-negative — makes the
// lane arithmetic exact: two lanes < 2^31 sum without carrying into the
// upper lane, and folding the two 32-bit halves reconstructs the integral.
func integrateEvent(packets []Packet, limits, minLim []int64, lit []litRef) []litRef {
	for i := range packets {
		pkt := &packets[i]
		asic := pkt.ASICIndex()
		base := asic * ChannelsPerASIC
		// The limits table is sized NumASICs*ChannelsPerASIC and ASICIndex
		// is < NumASICs — a configuration contract, not a provable range.
		//hepccl:checked
		lim := limits[base : base+ChannelsPerASIC : base+ChannelsPerASIC]
		if blk := pkt.block; len(blk) == ChannelsPerASIC*4 {
			if uintptr(unsafe.Pointer(&blk[0]))&7 == 0 {
				u := unsafe.Slice((*uint64)(unsafe.Pointer(&blk[0])), ChannelsPerASIC*2)
				// Dark screen: each channel's integral is bounded by the
				// packet total (samples are non-negative), so a total below
				// the ASIC's smallest limit proves every channel dark. The
				// ≤ 0xFFFF sample bound keeps the 32 lane adds carry-free.
				var tot uint64
				// Walk by shrinking the slice head: constant indices the
				// compiler proves in range, where the strided form keeps a
				// check per load.
				for v := u; len(v) >= 4; v = v[4:] {
					tot += v[0] + v[1] + v[2] + v[3]
				}
				// minLim is sized NumASICs and ASICIndex < NumASICs — the
				// same configuration contract as the limits table above.
				//hepccl:checked
				if int64(tot&0xFFFFFFFF)+int64(tot>>32) < minLim[asic] {
					continue
				}
				for ch := 0; ch < ChannelsPerASIC; ch += 2 {
					t0 := u[2*ch] + u[2*ch+1]
					t1 := u[2*ch+2] + u[2*ch+3]
					raw0 := int64(t0&0xFFFFFFFF) + int64(t0>>32)
					raw1 := int64(t1&0xFFFFFFFF) + int64(t1>>32)
					if raw0 >= lim[ch] {
						lit = append(lit, litRef{int32(base + ch), raw0})
					}
					if raw1 >= lim[ch+1] {
						lit = append(lit, litRef{int32(base + ch + 1), raw1})
					}
				}
				continue
			}
			blk = blk[: ChannelsPerASIC*4 : ChannelsPerASIC*4]
			for ch := 0; ch < ChannelsPerASIC; ch++ {
				o := ch * 4
				raw := int64(blk[o]) + int64(blk[o+1]) + int64(blk[o+2]) + int64(blk[o+3])
				if raw >= lim[ch] {
					lit = append(lit, litRef{int32(base + ch), raw})
				}
			}
			continue
		}
		for ch := 0; ch < ChannelsPerASIC; ch++ {
			var raw int64
			for _, v := range pkt.Samples[ch] {
				raw += int64(v)
			}
			if raw >= lim[ch] {
				lit = append(lit, litRef{int32(base + ch), raw})
			}
		}
	}
	return lit
}
