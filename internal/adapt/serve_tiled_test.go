package adapt

import (
	"reflect"
	"testing"

	"github.com/wustl-adapt/hepccl/internal/detector"
)

// frameEvents digitizes n random-blob events for a megapixel-style frame
// config: px/400 blobs ≈ 2% occupancy, the workload the tile engine targets.
func frameEvents(t testing.TB, cfg Config, n int, seed uint64) [][]Packet {
	t.Helper()
	rng := detector.NewRNG(seed)
	dig := detector.DefaultDigitizer()
	dig.Samples = cfg.SamplesPerChannel
	rows, cols := cfg.Detection.TwoD.Rows, cfg.Detection.TwoD.Cols
	events := make([][]Packet, n)
	for i := range events {
		g := detector.RandomIslands(rows, cols, rows*cols/400, 1.5, rng)
		packets, err := GenerateEvent(g.Flat(), cfg.ASICs, uint32(i), uint64(i), dig, rng)
		if err != nil {
			t.Fatal(err)
		}
		events[i] = packets
	}
	return events
}

// TestDefaultFrameBackendResolution checks the size cutover: frames at or
// below TiledCutoverPixels keep the single-core run engine, larger frames get
// the tile-parallel pool, and the Serve knobs force either choice.
func TestDefaultFrameBackendResolution(t *testing.T) {
	cases := []struct {
		rows, cols  int
		serve       ServeBackend
		tileWorkers int
		want        string
	}{
		{43, 43, ServeRun, 0, "run"},
		{128, 128, ServeRun, 0, "run"}, // 16384 px: exactly at the cutover, stays single-core
		{160, 160, ServeRun, 0, "tiled"},
		{160, 160, ServeRunSingle, 0, "run"},
		{64, 64, ServeTiled, 2, "tiled"},
		{43, 43, ServePixel, 0, "pixel"},
	}
	for _, tc := range cases {
		cfg := DefaultFrame(tc.rows, tc.cols)
		cfg.Serve = tc.serve
		cfg.TileWorkers = tc.tileWorkers
		p, err := New(cfg)
		if err != nil {
			t.Fatalf("%dx%d serve=%v: %v", tc.rows, tc.cols, tc.serve, err)
		}
		backend, workers := p.ServeEngine()
		if backend != tc.want {
			t.Fatalf("%dx%d serve=%v: backend %q, want %q", tc.rows, tc.cols, tc.serve, backend, tc.want)
		}
		if backend == "tiled" && workers < 1 {
			t.Fatalf("%dx%d: tiled backend reports %d workers", tc.rows, tc.cols, workers)
		}
		if tc.tileWorkers > 0 && backend == "tiled" && workers != tc.tileWorkers {
			t.Fatalf("%dx%d: tiled backend reports %d workers, want %d", tc.rows, tc.cols, workers, tc.tileWorkers)
		}
		p.Close()
	}
}

// TestServeEventTiledMatchesSingle runs identical frame events through three
// pipelines — tile-parallel, forced single-core run-based, and the per-pixel
// reference — and requires bit-identical downlink records from all three:
// same compact raster island numbering, same integer moments, same Q16.16
// centroids.
func TestServeEventTiledMatchesSingle(t *testing.T) {
	base := DefaultFrame(160, 160)
	build := func(serve ServeBackend, workers int) *Pipeline {
		cfg := base
		cfg.Serve = serve
		cfg.TileWorkers = workers
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	tiled := build(ServeTiled, 4)
	defer tiled.Close()
	single := build(ServeRunSingle, 0)
	pixel := build(ServePixel, 0)

	events := frameEvents(t, base, 6, 41)
	total := 0
	for i, packets := range events {
		var recT, recS, recP EventRecord
		if err := tiled.ServeEvent(packets, &recT); err != nil {
			t.Fatal(err)
		}
		if err := single.ServeEvent(packets, &recS); err != nil {
			t.Fatal(err)
		}
		if err := pixel.ServeEvent(packets, &recP); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(recT, recS) {
			t.Fatalf("event %d: tiled record diverges from single-core run backend", i)
		}
		if !reflect.DeepEqual(recT, recP) {
			t.Fatalf("event %d: tiled record diverges from per-pixel reference", i)
		}
		total += len(recT.Islands)
	}
	if total == 0 {
		t.Fatal("no islands in any event; workload broken")
	}
}
