package adapt

import (
	"fmt"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/centroid"
	"github.com/wustl-adapt/hepccl/internal/design"
	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/runccl"
	"github.com/wustl-adapt/hepccl/internal/tileccl"
)

// Config parameterizes one build of the FPGA pipeline — the values the real
// firmware fixes at compile time.
type Config struct {
	// ASICs is the number of 16-channel digitizers per event.
	ASICs int
	// SamplesPerChannel is the waveform window length.
	SamplesPerChannel int
	// PedestalPerSample is the nominal baseline per ADC sample; the
	// per-channel pedestal integral is PedestalPerSample ×
	// SamplesPerChannel unless Calibrate has measured channel-specific
	// values.
	PedestalPerSample int64
	// GainADC is the ADC integral of one photo-electron.
	GainADC int64
	// ThresholdPE zero-suppresses photo-electron counts at or below it.
	ThresholdPE grid.Value
	// Detection selects and configures the island-detection back end
	// (the TWO_DIMENSION switch).
	Detection design.TopConfig
	// Serve selects ServeEvent's 2D labeling backend. The zero value is the
	// bit-packed run-based engine family with the automatic size cutover:
	// frames above TiledCutoverPixels label on the tile-parallel engine,
	// smaller ones on single-core runccl. ServePixel keeps the per-pixel
	// reference; ServeRunSingle and ServeTiled pin one run-based engine for
	// A/B measurement.
	Serve ServeBackend
	// TileWorkers caps the tile-parallel engine's labeling concurrency
	// (including the calling worker); 0 uses the engine default,
	// min(GOMAXPROCS, 8). Ignored unless the tiled backend is selected.
	TileWorkers int
}

// TiledCutoverPixels is the frame size above which the default run-based
// backend switches from single-core runccl to the tile-parallel engine. One
// 128×128 frame (16384 px) sits exactly at the threshold and stays
// single-core; everything the paper studies (≤64×64) is far below it, so the
// cutover cannot touch the 43×43 serving hot path. Above it, per-event work
// is large enough that tile fan-out repays the merge overhead.
const TiledCutoverPixels = 1 << 14

// ServeBackend selects the island-labeling engine behind ServeEvent's 2D
// path. Both produce the identical island partition, statistics, and compact
// raster numbering; they differ only in cost scaling.
type ServeBackend int

const (
	// ServeRun (the default) is the bit-packed run-based engine family
	// (internal/runccl, internal/tileccl): labeling cost scales with lit
	// content, not array area, and frames above TiledCutoverPixels fan tiles
	// out across the tile-parallel worker pool.
	ServeRun ServeBackend = iota
	// ServePixel is the raster-scan per-pixel union-find, kept as the
	// reference implementation for differential testing.
	ServePixel
	// ServeRunSingle pins single-core runccl regardless of frame size — the
	// baseline side of the tiled-vs-single A/B.
	ServeRunSingle
	// ServeTiled pins the tile-parallel engine regardless of frame size.
	ServeTiled
)

// String implements fmt.Stringer.
func (b ServeBackend) String() string {
	switch b {
	case ServePixel:
		return "pixel"
	case ServeRun:
		return "run"
	case ServeRunSingle:
		return "run-single"
	case ServeTiled:
		return "tiled"
	default:
		return fmt.Sprintf("ServeBackend(%d)", int(b))
	}
}

// DefaultADAPT returns the synthetic ADAPT flight configuration: 20 ASICs
// (320 channels) in 1D mode with the pipelined schedule — the configuration
// whose ~300k events/s matches the pipeline throughput reported in §2.
func DefaultADAPT() Config {
	return Config{
		ASICs:             20,
		SamplesPerChannel: 16,
		PedestalPerSample: 200,
		GainADC:           40,
		ThresholdPE:       2,
		Detection:         design.TopConfig{OneDPipelined: true},
	}
}

// DefaultFrame returns a configuration for an arbitrary 2D frame geometry —
// the pixel-telescope / imaging workload class beyond the paper's cameras.
// Channel math is the same as DefaultCTA (⌈px/16⌉ 16-channel ASICs,
// zero-padded); the readout window is short (4 samples) because at megapixel
// scale the wire cost per event is dominated by channel count, and backend
// selection follows Config.Serve's automatic size cutover.
func DefaultFrame(rows, cols int) Config {
	px := rows * cols
	return Config{
		ASICs:             (px + ChannelsPerASIC - 1) / ChannelsPerASIC,
		SamplesPerChannel: 4,
		PedestalPerSample: 200,
		GainADC:           40,
		ThresholdPE:       2,
		Detection: design.TopConfig{
			TwoDimension: true,
			TwoD: design.Config{
				Rows: rows, Cols: cols,
				Connectivity: grid.FourWay,
				Stage:        design.StagePipelined,
			},
		},
	}
}

// DefaultCTA returns the CTA-style configuration the paper targets: a 43×43
// camera (1849 pixels ⇒ 116 ASICs, zero-padded) in 2D mode with 4-way CCL on
// the fully pipelined design.
func DefaultCTA() Config {
	return Config{
		ASICs:             116, // ⌈1849/16⌉
		SamplesPerChannel: 16,
		PedestalPerSample: 200,
		GainADC:           40,
		ThresholdPE:       2,
		Detection: design.TopConfig{
			TwoDimension: true,
			TwoD: design.Config{
				Rows: 43, Cols: 43,
				Connectivity: grid.FourWay,
				Stage:        design.StagePipelined,
			},
		},
	}
}

// Pipeline is one instantiated FPGA pipeline. A Pipeline holds calibration
// and scratch state and is not safe for concurrent use; concurrent servers
// run one Pipeline per worker (see internal/server).
type Pipeline struct {
	cfg        Config
	merger     *Merger
	pedestals  []int64 // per flat channel, integral units
	serve      serveScratch
	runEngine  *runccl.Engine  // 2D single-core run-based backend; nil otherwise
	tileEngine *tileccl.Engine // 2D tile-parallel backend; nil otherwise
	seen       []uint64        // checkEvent duplicate-ASIC bitmap, one bit per ASIC

	// Serving-path precomputation. cutoff is the ADC-domain zero-suppression
	// threshold: with rounded division by gain g, pe > T ⇔ net ≥ (T+1)·g −
	// g/2, so suppressed channels never pay the photon-count division.
	// limits[fl] = cutoff + pedestals[fl] folds the pedestal subtraction into
	// the same compare; Calibrate rebuilds it. litWord/litMask map a flat
	// pixel index to its word and bit in the run engine's bitmap layout,
	// replacing a per-lit-pixel division.
	// minLim[asic] is the minimum of limits over the ASIC's 16 channels:
	// a packet whose total sample sum stays below it cannot contain a lit
	// channel (samples are non-negative), so the integration loop clears
	// whole dark packets with one screened compare.
	// litRow/litCol are the inverse maps (flat pixel -> row, column), built
	// for the single-core run backend so the batched fused decode can stream
	// runs without materializing a bitmap.
	// limits32 is the limits table clamped into uint32 for the 4-sample
	// fused batch decode: a 4-sample raw integral is at most 4×0xFFFF, so a
	// non-positive limit clamps to 0 (always lit), anything above the
	// reachable range clamps to 1<<20 (never lit), and the lit compare
	// becomes the sign bit of a 32-bit subtraction — four channels' dark
	// checks AND into one predicated branch.
	cutoff   int64
	limits   []int64
	limits32 []uint32
	minLim   []int64
	litWord  []int32
	litMask  []uint64
	litRow   []int32
	litCol   []int32
	// pcM/pcMax implement PhotonCount's divide-by-gain as an exact magic
	// multiply for numerators in [0, pcMax): with M = ⌊2^47/g⌋+1 = (2^47+e)/g
	// (0 < e ≤ g), ⌊n·M/2^47⌋ = ⌊n/g + n·e/(g·2^47)⌋ equals ⌊n/g⌋ whenever
	// the error term stays below 1/(2g), which n ≤ 2^23 and g < 2^23
	// guarantee; pcMax also caps n·M below 2^63. Out-of-range numerators
	// (including negative ones, where Go's truncating division differs from
	// floor) fall back to the real division.
	pcM   uint64
	pcMax uint64
}

// New validates the configuration and builds the pipeline. Pipelines whose
// backend selection resolves to the tile-parallel engine own a worker pool;
// call Close when discarding one (Close is a no-op otherwise).
func New(cfg Config) (*Pipeline, error) {
	if cfg.ASICs < 1 {
		return nil, fmt.Errorf("adapt: need at least one ASIC")
	}
	if cfg.ASICs > MaxASICs {
		return nil, fmt.Errorf("adapt: %d ASICs exceed the %d the wire index addresses", cfg.ASICs, MaxASICs)
	}
	switch cfg.Serve {
	case ServeRun, ServePixel, ServeRunSingle, ServeTiled:
	default:
		return nil, fmt.Errorf("adapt: unknown serve backend %d", int(cfg.Serve))
	}
	if cfg.TileWorkers < 0 {
		return nil, fmt.Errorf("adapt: negative tile worker count %d", cfg.TileWorkers)
	}
	if cfg.SamplesPerChannel < 1 || cfg.SamplesPerChannel > 255 {
		return nil, fmt.Errorf("adapt: samples per channel %d outside 1..255", cfg.SamplesPerChannel)
	}
	if cfg.GainADC <= 0 {
		return nil, fmt.Errorf("adapt: gain must be positive")
	}
	channels := cfg.ASICs * ChannelsPerASIC
	if cfg.Detection.TwoDimension {
		px := cfg.Detection.TwoD.Rows * cfg.Detection.TwoD.Cols
		if px < 1 {
			return nil, fmt.Errorf("adapt: 2D mode needs positive array dims")
		}
		if px > channels {
			return nil, fmt.Errorf("adapt: %d pixels exceed %d digitizer channels",
				px, channels)
		}
	}
	merger, err := NewMerger(cfg.ASICs)
	if err != nil {
		return nil, err
	}
	peds := make([]int64, channels)
	nominal := cfg.PedestalPerSample * int64(cfg.SamplesPerChannel)
	for i := range peds {
		peds[i] = nominal
	}
	p := &Pipeline{cfg: cfg, merger: merger, pedestals: peds}
	p.cutoff = (int64(cfg.ThresholdPE)+1)*cfg.GainADC - cfg.GainADC/2
	p.limits = make([]int64, channels)
	p.minLim = make([]int64, cfg.ASICs)
	p.refreshLimits()
	if cfg.GainADC < 1<<23 {
		p.pcM = uint64(1)<<47/uint64(cfg.GainADC) + 1
		p.pcMax = uint64(1) << 23
		if lim := (uint64(1) << 63) / p.pcM; lim < p.pcMax {
			p.pcMax = lim
		}
	}
	if cfg.Detection.TwoDimension && cfg.Serve != ServePixel {
		conn := cfg.Detection.TwoD.Connectivity
		if !conn.Valid() {
			conn = grid.FourWay // matches the pixel path's "not 8-way ⇒ 4-way"
		}
		rows, cols := cfg.Detection.TwoD.Rows, cfg.Detection.TwoD.Cols
		px := rows * cols
		var wpr int
		if cfg.Serve == ServeTiled || (cfg.Serve == ServeRun && px > TiledCutoverPixels) {
			p.tileEngine, err = tileccl.New(tileccl.Config{
				Rows: rows, Cols: cols,
				Connectivity: conn,
				Workers:      cfg.TileWorkers,
			})
			if err != nil {
				return nil, fmt.Errorf("adapt: %w", err)
			}
			wpr = p.tileEngine.WordsPerRow()
		} else {
			p.runEngine, err = runccl.NewEngine(rows, cols, conn)
			if err != nil {
				return nil, fmt.Errorf("adapt: %w", err)
			}
			wpr = p.runEngine.WordsPerRow()
		}
		// Both engines share the bitmap layout, so one litWord/litMask table
		// serves either.
		p.litWord = make([]int32, px)
		p.litMask = make([]uint64, px)
		for fl := 0; fl < px; fl++ {
			r, c := fl/cols, fl%cols
			p.litWord[fl] = int32(r*wpr + c>>6)
			p.litMask[fl] = 1 << uint(c&63)
		}
		if p.runEngine != nil {
			// The batched fused decode is a single-core run backend path;
			// the tiled engine (megapixel frames) never consults these.
			p.litRow = make([]int32, px)
			p.litCol = make([]int32, px)
			for fl := 0; fl < px; fl++ {
				p.litRow[fl] = int32(fl / cols)
				p.litCol[fl] = int32(fl % cols)
			}
		}
	}
	p.seen = make([]uint64, (cfg.ASICs+63)/64)
	return p, nil
}

// Close releases the pipeline's tile-parallel worker pool, if any. The
// pipeline must not process further events after Close.
func (p *Pipeline) Close() {
	if p.tileEngine != nil {
		p.tileEngine.Close()
	}
}

// ServeEngine describes the labeling backend ServeEvent resolved to — the
// /stats gauge surface. tileWorkers is 0 unless the tiled engine is active.
func (p *Pipeline) ServeEngine() (backend string, tileWorkers int) {
	switch {
	case !p.cfg.Detection.TwoDimension:
		return "1d", 0
	case p.tileEngine != nil:
		return ServeTiled.String(), p.tileEngine.Workers()
	case p.runEngine != nil:
		return ServeRun.String(), 0
	default:
		return ServePixel.String(), 0
	}
}

// refreshLimits rebuilds the per-channel ADC suppression limits and the
// per-ASIC dark-screen minimums from the current pedestals.
func (p *Pipeline) refreshLimits() {
	for i, ped := range p.pedestals {
		p.limits[i] = p.cutoff + ped
	}
	for a := range p.minLim {
		m := p.limits[a*ChannelsPerASIC]
		for _, l := range p.limits[a*ChannelsPerASIC+1 : (a+1)*ChannelsPerASIC] {
			if l < m {
				m = l
			}
		}
		p.minLim[a] = m
	}
	if p.cfg.SamplesPerChannel == 4 {
		//hepccl:amortized
		if p.limits32 == nil {
			p.limits32 = make([]uint32, len(p.limits))
		}
		for i, l := range p.limits {
			switch {
			case l <= 0:
				p.limits32[i] = 0
			case l > 4*0xFFFF:
				p.limits32[i] = 1 << 20
			default:
				p.limits32[i] = uint32(l)
			}
		}
	}
}

// Config returns the pipeline's configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Channels returns the flat merged channel count.
func (p *Pipeline) Channels() int { return p.merger.Channels() }

// Calibrate measures per-channel pedestal integrals from pedestal-only
// events (no light), replacing the nominal baseline — the data-acquisition
// calibration pass the real instrument runs before observing.
func (p *Pipeline) Calibrate(events [][]Packet) error {
	if len(events) == 0 {
		return fmt.Errorf("adapt: calibration needs at least one event")
	}
	sums := make([]int64, p.Channels())
	for _, packets := range events {
		if err := p.checkEvent(packets); err != nil {
			return fmt.Errorf("adapt: calibration: %w", err)
		}
		for _, pkt := range packets {
			ints := pkt.Integrals()
			base := pkt.ASICIndex() * ChannelsPerASIC
			for ch, v := range ints {
				sums[base+ch] += v
			}
		}
	}
	for i := range sums {
		p.pedestals[i] = sums[i] / int64(len(events))
	}
	p.refreshLimits()
	return nil
}

// Pedestal returns the calibrated pedestal integral of a flat channel.
func (p *Pipeline) Pedestal(channel int) int64 { return p.pedestals[channel] }

// checkEvent validates event packet structure: one packet per ASIC, matching
// event ids and sample counts.
//
//hepccl:hotpath
func (p *Pipeline) checkEvent(packets []Packet) error {
	//hepccl:coldpath
	if len(packets) != p.cfg.ASICs {
		return fmt.Errorf("event has %d packets, want %d", len(packets), p.cfg.ASICs)
	}
	// seen is a persistent one-bit-per-ASIC table (only ⌈ASICs/64⌉ words to
	// clear — cheaper than a fixed 256-byte array for small configs, and the
	// Flags-extended index space makes a fixed array impossible anyway).
	seen := p.seen
	for i := range seen {
		seen[i] = 0
	}
	event := packets[0].Event
	for i := range packets {
		pkt := &packets[i]
		asic := pkt.ASICIndex()
		//hepccl:coldpath
		if asic >= p.cfg.ASICs {
			return fmt.Errorf("packet from unknown ASIC %d", asic)
		}
		//hepccl:coldpath
		if seen[asic>>6]&(1<<uint(asic&63)) != 0 {
			return fmt.Errorf("duplicate packet from ASIC %d", asic)
		}
		seen[asic>>6] |= 1 << uint(asic&63)
		//hepccl:coldpath
		if pkt.Event != event {
			return fmt.Errorf("event id mismatch: ASIC %d has %d, want %d", pkt.ASIC, pkt.Event, event)
		}
		//hepccl:coldpath
		if int(pkt.SamplesPerChannel) != p.cfg.SamplesPerChannel {
			return fmt.Errorf("ASIC %d has %d samples/channel, want %d",
				pkt.ASIC, pkt.SamplesPerChannel, p.cfg.SamplesPerChannel)
		}
	}
	return nil
}

// EventResult is the pipeline's output for one trigger.
type EventResult struct {
	// Event is the trigger sequence number.
	Event uint32
	// Values is the merged, zero-suppressed photo-electron image (flat).
	Values []grid.Value
	// OneD holds the 1D islands + centroids when TWO_DIMENSION is unset.
	OneD *design.Output1D
	// TwoD holds the 2D design output when TWO_DIMENSION is set.
	TwoD *design.Output
	// Islands are the extracted 2D islands (2D mode only).
	Islands []ccl.Island
	// Centroids are the 2D island centroids (2D mode only).
	Centroids []centroid.Centroid2D
	// HardwareCentroids are the fixed-point centroids from the streaming
	// island_centroid_2d design (2D mode only) — what the FPGA actually
	// transmits; Centroids is the float reference.
	HardwareCentroids *design.CentroidOutput
}

// ProcessEvent runs one trigger's packets through the full pipeline:
// packet handling → integration → pedestal subtraction → photon counting →
// zero-suppression → merge → island detection (+ centroiding).
func (p *Pipeline) ProcessEvent(packets []Packet) (*EventResult, error) {
	// The cycle-accurate path models the hardware Merge module, whose ASIC
	// streams are keyed by the one-byte wire field; frame geometries beyond
	// 256 ASICs exist only on the serving path.
	if p.cfg.ASICs > 256 {
		return nil, fmt.Errorf("adapt: cycle-accurate pipeline supports at most 256 ASICs, have %d (use ServeEvent)", p.cfg.ASICs)
	}
	if err := p.checkEvent(packets); err != nil {
		return nil, fmt.Errorf("adapt: %w", err)
	}
	blocks := make(map[uint8][ChannelsPerASIC]grid.Value, len(packets))
	for i := range packets {
		pkt := &packets[i]
		ints := pkt.Integrals()
		var block [ChannelsPerASIC]grid.Value
		base := int(pkt.ASIC) * ChannelsPerASIC
		for ch, raw := range ints {
			net := PedestalSubtract(raw, p.pedestals[base+ch])
			pe := PhotonCount(net, p.cfg.GainADC)
			block[ch] = ZeroSuppress(pe, p.cfg.ThresholdPE)
		}
		blocks[pkt.ASIC] = block
	}
	merged, err := p.merger.Merge(blocks)
	if err != nil {
		return nil, err
	}

	res := &EventResult{Event: packets[0].Event, Values: merged}
	det := p.cfg.Detection
	if det.TwoDimension {
		// The camera may be smaller than the padded channel array.
		px := det.TwoD.Rows * det.TwoD.Cols
		out, err := design.IslandDetection(merged[:px], det)
		if err != nil {
			return nil, err
		}
		res.TwoD = out.TwoD
		g, err := grid.FromFlat(det.TwoD.Rows, det.TwoD.Cols, merged[:px])
		if err != nil {
			return nil, err
		}
		res.Islands = ccl.Islands(g, out.TwoD.Labels)
		res.Centroids = centroid.All2D(res.Islands)
		// The streaming hardware centroid stage (Fig 3's centroiding half).
		// Final labels are merge-table roots, bounded by its capacity.
		hw, err := design.RunCentroid2D(g, out.TwoD.Labels, ccl.SizeFor(det.TwoD.Rows, det.TwoD.Cols, det.TwoD.Connectivity))
		if err != nil {
			return nil, err
		}
		res.HardwareCentroids = hw
		return res, nil
	}
	out, err := design.IslandDetection(merged, det)
	if err != nil {
		return nil, err
	}
	res.OneD = out.OneD
	return res, nil
}
