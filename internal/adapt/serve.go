package adapt

import (
	"fmt"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

// Serving fast path. ProcessEvent runs the cycle-level HLS co-simulation of
// the island-detection design — the right tool for reproducing the paper's
// tables, and ~5x too slow for a network server that must sustain the §5.5
// event rates in software. ServeEvent produces the same kind of downlink
// record through the functional route: identical per-channel stage math
// (integrate → pedestal subtract → photon count → zero-suppress → merge),
// then a raster-scan union-find producing the same island partition as the
// CCL design (with the corrected resolver) and integer Q16.16 centroids,
// with all scratch storage reused across events.
//
// Differences from ProcessEvent + RecordOf, by design:
//
//   - island labels are compact 1..K in raster order rather than merge-table
//     root numbers (the partition of pixels into islands is identical);
//   - the corrected merge-table resolver is used, so the §6 corner case of
//     the published hardware does not occur;
//   - no synthesis report, waveform trace, or intermediate label state is
//     produced.

// serveScratch is per-pipeline reusable storage for ServeEvent. A Pipeline
// is not safe for concurrent use; servers give each worker its own.
type serveScratch struct {
	merged []grid.Value
	labels []int32 // per-pixel provisional label
	parent []int32 // union-find over provisional labels
	remap  []int32 // provisional root -> compact island number
	pixels []uint32
	sums   []int64
	rows   []int64
	cols   []int64
}

// ServeEvent processes one assembled event into rec, reusing rec's island
// storage and the pipeline's internal scratch. It is the hot path of
// internal/server.
func (p *Pipeline) ServeEvent(packets []Packet, rec *EventRecord) error {
	if err := p.checkEvent(packets); err != nil {
		return fmt.Errorf("adapt: %w", err)
	}
	sc := &p.serve
	if sc.merged == nil {
		sc.merged = make([]grid.Value, p.Channels())
	}
	merged := sc.merged
	// Threshold in the ADC domain so suppressed channels (the vast majority)
	// never pay the photon-count division: with rounded division by gain g,
	// pe > T  ⇔  net >= (T+1)·g − g/2.
	gain := p.cfg.GainADC
	cutoff := int64(1) << 62 // gain <= 0: PhotonCount yields 0, all suppressed
	if gain > 0 {
		cutoff = (int64(p.cfg.ThresholdPE)+1)*gain - gain/2
	}
	for i := range packets {
		pkt := &packets[i]
		base := int(pkt.ASIC) * ChannelsPerASIC
		for ch := 0; ch < ChannelsPerASIC; ch++ {
			var raw int64
			if s := pkt.Samples[ch]; len(s) == 4 {
				raw = int64(s[0]) + int64(s[1]) + int64(s[2]) + int64(s[3])
			} else {
				for _, v := range s {
					raw += int64(v)
				}
			}
			net := PedestalSubtract(raw, p.pedestals[base+ch])
			if net < cutoff {
				merged[base+ch] = 0
				continue
			}
			merged[base+ch] = PhotonCount(net, gain)
		}
	}
	rec.Event = packets[0].Event
	rec.Islands = rec.Islands[:0]

	det := p.cfg.Detection
	if !det.TwoDimension {
		return p.serve1D(merged, rec)
	}
	return p.serve2D(merged, rec)
}

// serve2D labels the flat merged image with an inline raster-scan union-find
// — the same partition ccl.Label computes, specialized to the serving hot
// path: no Grid/Labels wrappers, no merge-table model, all storage reused.
// Islands are numbered 1..K in raster order of first appearance, matching
// ccl.Options.CompactLabels.
func (p *Pipeline) serve2D(merged []grid.Value, rec *EventRecord) error {
	det := p.cfg.Detection.TwoD
	nrows, ncols := det.Rows, det.Cols
	px := nrows * ncols
	eight := det.Connectivity == grid.EightWay
	sc := &p.serve
	if cap(sc.labels) < px {
		sc.labels = make([]int32, px)
	}
	labels := sc.labels[:px]
	parent := append(sc.parent[:0], 0) // provisional label 0 = background

	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}

	for r := 0; r < nrows; r++ {
		rowBase := r * ncols
		for c := 0; c < ncols; c++ {
			i := rowBase + c
			if merged[i] == 0 {
				labels[i] = 0
				continue
			}
			var n [4]int32 // left, up-left, up, up-right
			if c > 0 {
				n[0] = labels[i-1]
			}
			if r > 0 {
				n[2] = labels[i-ncols]
				if eight {
					if c > 0 {
						n[1] = labels[i-ncols-1]
					}
					if c < ncols-1 {
						n[3] = labels[i-ncols+1]
					}
				}
			}
			l := int32(0)
			for _, nb := range n {
				if nb == 0 {
					continue
				}
				rt := find(nb)
				switch {
				case l == 0:
					l = rt
				case rt < l:
					parent[l] = rt
					l = rt
				case rt > l:
					parent[rt] = l
				}
			}
			if l == 0 {
				l = int32(len(parent))
				parent = append(parent, l)
			}
			labels[i] = l
		}
	}
	sc.parent = parent

	// Resolve every provisional label to its root, then accumulate island
	// statistics in one sweep, assigning compact numbers at first appearance.
	np := len(parent)
	if cap(sc.remap) < np {
		sc.remap = make([]int32, np)
		sc.pixels = make([]uint32, np)
		sc.sums = make([]int64, np)
		sc.rows = make([]int64, np)
		sc.cols = make([]int64, np)
	}
	remap := sc.remap[:np]
	pixels, sums := sc.pixels[:np], sc.sums[:np]
	rows, cols := sc.rows[:np], sc.cols[:np]
	for l := 0; l < np; l++ {
		remap[l] = 0
		pixels[l], sums[l], rows[l], cols[l] = 0, 0, 0, 0
	}
	// parent[l] <= l always (unions point larger labels at smaller ones), so
	// one ascending sweep resolves every label to its root.
	for l := 1; l < np; l++ {
		parent[l] = parent[parent[l]]
	}
	k := int32(0)
	for i := 0; i < px; i++ {
		l := labels[i]
		if l == 0 {
			continue
		}
		root := parent[l]
		cl := remap[root]
		if cl == 0 {
			k++
			cl = k
			remap[root] = cl
		}
		v := int64(merged[i])
		pixels[cl]++
		sums[cl] += v
		rows[cl] += int64(i/ncols) * v
		cols[cl] += int64(i%ncols) * v
	}
	for l := int32(1); l <= k; l++ {
		rec.Islands = append(rec.Islands, IslandRecord{
			Label:  grid.Label(l),
			Pixels: uint16(pixels[l]),
			Sum:    sums[l],
			RowQ16: q16Ratio(rows[l], sums[l]),
			ColQ16: q16Ratio(cols[l], sums[l]),
		})
	}
	return nil
}

// serve1D emits runs of consecutive lit channels — the functional equivalent
// of the 1D island detection + centroiding design.
func (p *Pipeline) serve1D(merged []grid.Value, rec *EventRecord) error {
	n := len(merged)
	for start := 0; start < n; {
		if merged[start] == 0 {
			start++
			continue
		}
		end := start
		var sum, weighted int64
		for end < n && merged[end] != 0 {
			v := int64(merged[end])
			sum += v
			weighted += int64(end) * v
			end++
		}
		rec.Islands = append(rec.Islands, IslandRecord{
			Label:  grid.Label(len(rec.Islands) + 1),
			Pixels: uint16(end - start),
			Sum:    sum,
			RowQ16: 0,
			ColQ16: q16Ratio(weighted, sum),
		})
		start = end
	}
	return nil
}

// q16Ratio returns round(num/den × 2^16) in Q16.16, the same rounding the
// streaming centroid divider applies.
func q16Ratio(num, den int64) int32 {
	if den == 0 {
		return 0
	}
	return int32((num<<16 + den/2) / den)
}
