package adapt

import (
	"fmt"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/runccl"
)

// Serving fast path. ProcessEvent runs the cycle-level HLS co-simulation of
// the island-detection design — the right tool for reproducing the paper's
// tables, and ~5x too slow for a network server that must sustain the §5.5
// event rates in software. ServeEvent produces the same kind of downlink
// record through the functional route: identical per-channel stage math
// (integrate → pedestal subtract → photon count → zero-suppress → merge),
// then island labeling producing the same partition as the CCL design (with
// the corrected resolver) and integer Q16.16 centroids, with all scratch
// storage reused across events.
//
// Two labeling backends implement the 2D path (Config.Serve):
//
//   - ServeRun (default): zero-suppression packs a lit bitmap ([]uint64,
//     one bit per pixel) alongside the merged values, and the run-based
//     engine of internal/runccl labels runs of lit pixels extracted
//     word-at-a-time — cost scales with island content (~1–5% occupancy for
//     CTA-like workloads), not array area, and no labels image is ever
//     materialized.
//   - ServePixel: the raster-scan per-pixel union-find, kept as the
//     reference for differential testing (FuzzRunCCLvsPixel).
//
// Differences from ProcessEvent + RecordOf, by design:
//
//   - island labels are compact 1..K in raster order rather than merge-table
//     root numbers (the partition of pixels into islands is identical);
//   - the corrected merge-table resolver is used, so the §6 corner case of
//     the published hardware does not occur;
//   - no synthesis report, waveform trace, or intermediate label state is
//     produced.

// serveScratch is per-pipeline reusable storage for ServeEvent. A Pipeline
// is not safe for concurrent use; servers give each worker its own.
type serveScratch struct {
	merged  []grid.Value
	bitmap  []uint64        // lit-pixel bitmap for the run backend
	lit     []litRef        // above-threshold channels found during integration
	islands []runccl.Island // run backend island accumulator
	batch   *runccl.Batch   // batch-resident run arena behind ServeBatch
	evIdx   []int32         // ServeBatch: input event -> batch event index, -1 on error
	labels  []int32         // pixel path: per-pixel provisional label
	uf      ccl.DenseUF     // pixel path: union-find over provisional labels
	remap   []int32         // pixel path: provisional root -> compact island
	pixels  []uint32
	sums    []int64
	rows    []int64
	cols    []int64
}

// litRef records one above-threshold channel found during integration. The
// rare lit-channel work (photon-count division, merged store, bitmap bit) is
// deferred to a pass over this list so the per-channel hot loop carries only
// a sum and one compare.
type litRef struct {
	fl  int32
	raw int64
}

// ServeEvent processes one assembled event into rec, reusing rec's island
// storage and the pipeline's internal scratch. It is the hot path of
// internal/server.
//
//hepccl:hotpath
func (p *Pipeline) ServeEvent(packets []Packet, rec *EventRecord) error {
	if err := p.checkEvent(packets); err != nil {
		//hepccl:coldpath
		return fmt.Errorf("adapt: %w", err)
	}
	sc := &p.serve
	//hepccl:amortized
	if sc.merged == nil {
		sc.merged = make([]grid.Value, p.Channels())
		sc.lit = make([]litRef, 0, 256)
	}
	merged := sc.merged
	det := p.cfg.Detection
	// The run-based family (single-core runccl or the tile-parallel engine —
	// both consume the identical bitmap layout) versus the per-pixel path.
	bitmapLen := 0
	if p.runEngine != nil {
		bitmapLen = p.runEngine.BitmapLen()
	} else if p.tileEngine != nil {
		bitmapLen = p.tileEngine.BitmapLen()
	}
	var bitmap []uint64
	px := 0
	if bitmapLen > 0 {
		//hepccl:amortized
		if sc.bitmap == nil {
			sc.bitmap = make([]uint64, bitmapLen)
		}
		bitmap = sc.bitmap
		for i := range bitmap {
			bitmap[i] = 0
		}
		px = det.TwoD.Rows * det.TwoD.Cols
	} else {
		// The backends that scan every pixel need dark channels to read
		// zero. The run backend consults only lit bitmap positions, so it
		// skips this clear: stale dark values are never read.
		for i := range merged {
			merged[i] = 0
		}
	}
	// Integration + zero-suppression. limits[fl] = cutoff + pedestal folds
	// the pedestal subtraction and the ADC-domain threshold (pe > T ⇔ net ≥
	// (T+1)·g − g/2) into a single compare against the raw integral, so the
	// vast dark majority costs one sum and one branch per channel.
	lit := integrateEvent(packets, p.limits, p.minLim, sc.lit[:0])
	sc.lit = lit
	gain := p.cfg.GainADC
	half := gain / 2
	// Lit entries carry flat indexes < Channels (integrateEvent's
	// contract), which bounds the pedestal and merged-image loads.
	//hepccl:checked
	for _, le := range lit {
		fl := int(le.fl)
		// PhotonCount(net, gain) = (net + gain/2) / gain, with the division
		// done as the pipeline's precomputed magic multiply when the
		// numerator is in range (it always is for wire-representable
		// samples); the fallback keeps crafted events bit-exact.
		num := le.raw - p.pedestals[fl] + half
		if uint64(num) < p.pcMax {
			merged[fl] = grid.Value(uint64(num) * p.pcM >> 47)
		} else {
			merged[fl] = PhotonCount(le.raw-p.pedestals[fl], gain)
		}
	}
	if bitmap != nil {
		// The word/mask tables hold an entry per pixel and fl < px is
		// checked inline; the bitmap holds a word per litWord value by the
		// geometry precomputation.
		//hepccl:checked
		for _, le := range lit {
			if fl := int(le.fl); fl < px {
				bitmap[p.litWord[fl]] |= p.litMask[fl]
			}
		}
	}
	rec.Event = packets[0].Event
	rec.Islands = rec.Islands[:0]

	if !det.TwoDimension {
		return p.serve1D(merged, rec)
	}
	if bitmap != nil {
		return p.serveRun2D(bitmap, merged[:px], rec)
	}
	return p.serve2D(merged, rec)
}

// serveRun2D labels the packed lit bitmap with whichever run-based engine
// the pipeline resolved to — single-core runccl or the tile-parallel pool —
// and copies its island summaries into the downlink record. Both engines
// produce bit-identical output, itself bit-identical to serve2D: same
// integer moments, same Q16.16 rounding, same compact raster numbering.
func (p *Pipeline) serveRun2D(bitmap []uint64, values []grid.Value, rec *EventRecord) error {
	sc := &p.serve
	if p.tileEngine != nil {
		sc.islands = p.tileEngine.Label(bitmap, values, sc.islands[:0])
	} else {
		sc.islands = p.runEngine.Label(bitmap, values, sc.islands[:0])
	}
	emitIslands(sc.islands, rec)
	return nil
}

// emitIslands copies run-engine island summaries into the downlink record,
// assigning compact 1..K labels in slice order — shared by the per-event run
// backends and the batched scatter.
//
//hepccl:hotpath
func emitIslands(islands []runccl.Island, rec *EventRecord) {
	n := len(islands)
	//hepccl:amortized
	if cap(rec.Islands) < n {
		rec.Islands = make([]IslandRecord, 0, n+n/2+8)
	}
	out := rec.Islands[:n]
	for i := range islands {
		is := &islands[i]
		out[i] = IslandRecord{
			Label:  int32(i + 1),
			Pixels: is.Pixels,
			Sum:    is.Sum,
			RowQ16: is.RowQ16,
			ColQ16: is.ColQ16,
		}
	}
	rec.Islands = out
}

// serve2D labels the flat merged image with an inline raster-scan union-find
// — the same partition ccl.Label computes, specialized to the serving hot
// path: no Grid/Labels wrappers, no merge-table model, all storage reused.
// Islands are numbered 1..K in raster order of first appearance, matching
// ccl.Options.CompactLabels.
func (p *Pipeline) serve2D(merged []grid.Value, rec *EventRecord) error {
	det := p.cfg.Detection.TwoD
	nrows, ncols := det.Rows, det.Cols
	px := nrows * ncols
	eight := det.Connectivity == grid.EightWay
	sc := &p.serve
	//hepccl:amortized
	if cap(sc.labels) < px {
		sc.labels = make([]int32, px)
	}
	labels := sc.labels[:px]
	uf := &sc.uf
	uf.Reset(1) // provisional label 0 = background

	// Raster indexes i = r·ncols + c and their up/left neighbor offsets all
	// lie in [0, px) under the r/c guards — product arithmetic the prove
	// pass does not model; the union-find label loads are loaded values.
	//hepccl:checked
	for r := 0; r < nrows; r++ {
		rowBase := r * ncols
		for c := 0; c < ncols; c++ {
			i := rowBase + c
			if merged[i] == 0 {
				labels[i] = 0
				continue
			}
			var n [4]int32 // left, up-left, up, up-right
			if c > 0 {
				n[0] = labels[i-1]
			}
			if r > 0 {
				n[2] = labels[i-ncols]
				if eight {
					if c > 0 {
						n[1] = labels[i-ncols-1]
					}
					if c < ncols-1 {
						n[3] = labels[i-ncols+1]
					}
				}
			}
			l := int32(0)
			for _, nb := range n {
				if nb == 0 {
					continue
				}
				if l == 0 {
					l = uf.Find(nb)
				} else {
					l = uf.Union(l, nb)
				}
			}
			if l == 0 {
				l = uf.Add()
			}
			labels[i] = l
		}
	}

	// Resolve every provisional label to its root, then accumulate island
	// statistics in one sweep, assigning compact numbers at first appearance.
	uf.Flatten()
	np := uf.Len()
	//hepccl:amortized
	if cap(sc.remap) < np {
		sc.remap = make([]int32, np)
		sc.pixels = make([]uint32, np)
		sc.sums = make([]int64, np)
		sc.rows = make([]int64, np)
		sc.cols = make([]int64, np)
	}
	remap := sc.remap[:np]
	pixels, sums := sc.pixels[:np], sc.sums[:np]
	rows, cols := sc.rows[:np], sc.cols[:np]
	for l := 0; l < np; l++ {
		remap[l] = 0
		pixels[l], sums[l], rows[l], cols[l] = 0, 0, 0, 0
	}
	k := int32(0)
	// Labels, roots, and compact numbers are loaded or counted values
	// bounded by the union-find population np — outside range proofs.
	//hepccl:checked
	for i := 0; i < px; i++ {
		l := labels[i]
		if l == 0 {
			continue
		}
		root := uf.Root(l)
		cl := remap[root]
		if cl == 0 {
			k++
			cl = k
			remap[root] = cl
		}
		v := int64(merged[i])
		pixels[cl]++
		sums[cl] += v
		rows[cl] += int64(i/ncols) * v
		cols[cl] += int64(i%ncols) * v
	}
	// Compact labels 1..k stay within np by the remap construction.
	//hepccl:checked
	for l := int32(1); l <= k; l++ {
		rec.Islands = append(rec.Islands, IslandRecord{
			Label:  l,
			Pixels: pixels[l],
			Sum:    sums[l],
			RowQ16: q16Ratio(rows[l], sums[l]),
			ColQ16: q16Ratio(cols[l], sums[l]),
		})
	}
	return nil
}

// serve1D emits runs of consecutive lit channels — the functional equivalent
// of the 1D island detection + centroiding design.
func (p *Pipeline) serve1D(merged []grid.Value, rec *EventRecord) error {
	// The outer range keeps start provably in bounds; end tracks how far the
	// last run was consumed, so interior positions skip without re-reading.
	end := 0
	for start, v0 := range merged {
		if start < end || v0 == 0 {
			continue
		}
		end = start
		var sum, weighted int64
		for end < len(merged) && merged[end] != 0 {
			v := int64(merged[end])
			sum += v
			weighted += int64(end) * v
			end++
		}
		rec.Islands = append(rec.Islands, IslandRecord{
			Label:  int32(len(rec.Islands) + 1),
			Pixels: uint32(end - start),
			Sum:    sum,
			RowQ16: 0,
			ColQ16: q16Ratio(weighted, sum),
		})
	}
	return nil
}

// q16Ratio returns round(num/den × 2^16) in Q16.16, the same rounding the
// streaming centroid divider applies.
func q16Ratio(num, den int64) int32 {
	if den == 0 {
		return 0
	}
	return int32((num<<16 + den/2) / den)
}
