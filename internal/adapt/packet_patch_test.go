package adapt

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestFramePatcherMatchesFullRecompute pins the incremental checksum update
// to the full refold: for a spread of event ids (including both 16-bit halves
// overflowing the fold), FramePatcher.SetEventID must produce bytes identical
// to PatchFrameEventID, and the result must unmarshal cleanly with the new id.
func TestFramePatcherMatchesFullRecompute(t *testing.T) {
	packets := makePackets(t, 2, 3)
	for pi := range packets {
		frame, err := packets[pi].Marshal()
		if err != nil {
			t.Fatal(err)
		}
		fp, err := NewFramePatcher(frame)
		if err != nil {
			t.Fatal(err)
		}
		full := append([]byte(nil), frame...)
		for _, ev := range []uint32{0, 1, 2, 0xFFFF, 0x10000, 0x1F0F3, 0xFFFFFFFF, 0xA1FAA1FA} {
			fp.SetEventID(frame, ev)
			if err := PatchFrameEventID(full, ev); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(frame, full) {
				t.Fatalf("packet %d event %#x: incremental patch diverges from full recompute", pi, ev)
			}
			var p Packet
			if _, err := p.Unmarshal(frame); err != nil {
				t.Fatalf("packet %d event %#x: patched frame rejected: %v", pi, ev, err)
			}
			if p.Event != ev {
				t.Fatalf("packet %d: patched event id %d, want %d", pi, p.Event, ev)
			}
		}
	}
	if _, err := NewFramePatcher(make([]byte, headerBytes)); err == nil {
		t.Fatal("NewFramePatcher accepted a short frame")
	}
}

// TestSkimEvent drives the decode-free skim path through its corner cases:
// a clean skim returns the event id; an assembly interrupted by a packet from
// a later event surfaces ErrIncompleteEvent and fully decodes + retains the
// interrupting packet so the next real read starts from it with correct
// samples; and garbage between frames is counted exactly as in ReadPacket.
func TestSkimEvent(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	ev1 := makePackets(t, 3, 1)
	ev2 := makePackets(t, 3, 2)
	ev3 := makePackets(t, 3, 3)
	if err := sw.WriteEvent(ev1); err != nil {
		t.Fatal(err)
	}
	buf.Write([]byte{0xDE, 0xAD, 0xBE}) // inter-event garbage
	// Event 2 loses its last packet; event 3 interrupts the assembly.
	for i := 0; i < 2; i++ {
		if err := sw.WritePacket(&ev2[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.WriteEvent(ev3); err != nil {
		t.Fatal(err)
	}

	sr := NewStreamReader(&buf)
	id, err := sr.SkimEvent(3)
	if err != nil || id != 1 {
		t.Fatalf("skim event 1: id=%d err=%v", id, err)
	}
	if _, err := sr.SkimEvent(3); err == nil || !errors.Is(err, ErrIncompleteEvent) {
		t.Fatalf("skim of truncated event 2: err=%v, want ErrIncompleteEvent", err)
	}
	if sr.SkippedBytes != 3 {
		t.Fatalf("SkippedBytes = %d, want 3 (inter-event garbage)", sr.SkippedBytes)
	}
	// The interrupting packet (event 3, ASIC 0) must have been retained fully
	// decoded: the follow-up assembly has to produce correct samples.
	got, err := sr.ReadEvent(3)
	if err != nil {
		t.Fatalf("read event 3 after interrupted skim: %v", err)
	}
	for i := range got {
		if got[i].Event != 3 || got[i].ASIC != ev3[i].ASIC {
			t.Fatalf("packet %d: event %d asic %d, want event 3 asic %d",
				i, got[i].Event, got[i].ASIC, ev3[i].ASIC)
		}
		for ch := 0; ch < ChannelsPerASIC; ch++ {
			for s := range got[i].Samples[ch] {
				if got[i].Samples[ch][s] != ev3[i].Samples[ch][s] {
					t.Fatalf("packet %d ch %d sample %d: %d != %d",
						i, ch, s, got[i].Samples[ch][s], ev3[i].Samples[ch][s])
				}
			}
		}
	}
	if _, err := sr.SkimEvent(3); err != io.EOF {
		t.Fatalf("skim at end of stream: err=%v, want io.EOF", err)
	}
	if sr.BadPackets != 0 {
		t.Fatalf("BadPackets = %d, want 0", sr.BadPackets)
	}
}

// TestSkimEventCorruption pins the skim path's corruption semantics: skimmed
// frames are framed on their header alone, so payload corruption inside a
// condemned event goes unnoticed (the event is a loss either way), while
// header corruption that misframes the stream is recovered by the resync hunt
// with damage bounded to that one event.
func TestSkimEventCorruption(t *testing.T) {
	build := func(t *testing.T) ([]byte, int) {
		var buf bytes.Buffer
		sw := NewStreamWriter(&buf)
		for id := uint32(1); id <= 3; id++ {
			if err := sw.WriteEvent(makePackets(t, 2, id)); err != nil {
				t.Fatal(err)
			}
		}
		frame := buf.Len() / 6 // six equal frames
		return buf.Bytes(), frame
	}

	t.Run("payload", func(t *testing.T) {
		data, frame := build(t)
		data[2*frame+headerBytes+4] ^= 0x40 // sample byte of event 2's first frame
		sr := NewStreamReader(bytes.NewReader(data))
		for want := uint32(1); want <= 3; want++ {
			id, err := sr.SkimEvent(2)
			if err != nil || id != want {
				t.Fatalf("skim: id=%d err=%v, want %d", id, err, want)
			}
		}
		if sr.BadPackets != 0 || sr.SkippedBytes != 0 {
			t.Fatalf("BadPackets=%d SkippedBytes=%d, want 0/0: skim must not inspect payloads",
				sr.BadPackets, sr.SkippedBytes)
		}
	})

	t.Run("header", func(t *testing.T) {
		data, frame := build(t)
		data[2*frame+headerBytes-1]++ // length byte of event 2's first frame: misframes the stream
		sr := NewStreamReader(bytes.NewReader(data))
		if id, err := sr.SkimEvent(2); err != nil || id != 1 {
			t.Fatalf("skim event 1: id=%d err=%v", id, err)
		}
		// The misframed skim of event 2 overshoots into its second frame; the
		// resync hunt must land on event 3, whose packets interrupt (and end)
		// the assembly. Either classification of the loss is acceptable — what
		// matters is that event 3 survives intact.
		if _, err := sr.SkimEvent(2); err == nil {
			t.Fatal("skim of misframed event 2 succeeded, want an error")
		}
		got, err := sr.ReadEvent(2)
		if err != nil {
			t.Fatalf("read event 3 after misframed skim: %v", err)
		}
		if got[0].Event != 3 {
			t.Fatalf("recovered event %d, want 3", got[0].Event)
		}
	})
}

// TestUnmarshalDetectsEverySingleBitFlip exercises the fused verify+decode
// path: flipping any single bit of a valid frame must make Unmarshal fail
// (the additive checksum changes by a nonzero value mod 0xFFFF, and flips in
// the magic or length fields fail their own checks first).
func TestUnmarshalDetectsEverySingleBitFlip(t *testing.T) {
	packets := makePackets(t, 1, 9)
	frame, err := packets[0].Marshal()
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), frame...)
	var p Packet
	for i := range frame {
		for b := 0; b < 8; b++ {
			mut[i] = frame[i] ^ (1 << b)
			if _, err := p.Unmarshal(mut); err == nil {
				t.Fatalf("bit %d of byte %d flipped undetected", b, i)
			}
			mut[i] = frame[i]
		}
	}
	if _, err := p.Unmarshal(mut); err != nil {
		t.Fatalf("restored frame rejected: %v", err)
	}
}
