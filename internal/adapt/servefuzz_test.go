package adapt

import (
	"testing"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/design"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

// FuzzRunCCLvsPixel is the differential check behind the run-based serving
// backend: for a fuzzer-chosen geometry, connectivity, and photo-electron
// image, the same digitized event is served through the run engine and the
// per-pixel reference backend, and both are compared — field by field —
// against an independently computed merged image labeled by the ccl package
// (ModeFixed, compact labels). All three must agree on the partition, pixel
// counts, sums, and Q16.16 centroids.
//
// Geometry spans both engine extraction paths: cols ≤ 64 exercises the
// single-word narrow extractor, wider images the generic multi-word one.
func FuzzRunCCLvsPixel(f *testing.F) {
	f.Add(uint64(1), uint8(43), uint8(43), false, []byte{0, 5, 5, 0, 9})
	f.Add(uint64(2), uint8(8), uint8(10), true, []byte{3, 3, 3, 3, 3, 3, 3})
	f.Add(uint64(3), uint8(5), uint8(70), false, []byte{40, 0, 40, 0, 40})
	f.Add(uint64(4), uint8(1), uint8(64), true, []byte{7})
	f.Add(uint64(5), uint8(16), uint8(16), true, []byte{})
	f.Fuzz(func(t *testing.T, seed uint64, rowsB, colsB uint8, eight bool, pe []byte) {
		rows := 1 + int(rowsB%48)
		cols := 1 + int(colsB%70)
		px := rows * cols
		conn := grid.FourWay
		if eight {
			conn = grid.EightWay
		}
		cfg := Config{
			ASICs:             (px + ChannelsPerASIC - 1) / ChannelsPerASIC,
			SamplesPerChannel: 4,
			PedestalPerSample: 200,
			GainADC:           40,
			ThresholdPE:       2,
			Detection: design.TopConfig{
				TwoDimension: true,
				TwoD: design.Config{
					Rows: rows, Cols: cols,
					Connectivity: conn,
					Stage:        design.StagePipelined,
				},
			},
		}

		// Truth image from the fuzz payload: PE amplitudes 0..41, so the
		// population straddles the ThresholdPE=2 suppression cut.
		truth := make([]grid.Value, cfg.ASICs*ChannelsPerASIC)
		for i := 0; i < px; i++ {
			if len(pe) > 0 {
				truth[i] = grid.Value(pe[i%len(pe)] % 42)
			}
		}
		rng := detector.NewRNG(seed | 1)
		dig := detector.DefaultDigitizer()
		dig.Samples = cfg.SamplesPerChannel
		packets, err := GenerateEvent(truth, cfg.ASICs, 7, 0, dig, rng)
		if err != nil {
			t.Fatal(err)
		}

		runCfg, pixCfg := cfg, cfg
		runCfg.Serve = ServeRun
		pixCfg.Serve = ServePixel
		pRun, err := New(runCfg)
		if err != nil {
			t.Fatal(err)
		}
		pPix, err := New(pixCfg)
		if err != nil {
			t.Fatal(err)
		}
		if pRun.runEngine == nil || pPix.runEngine != nil {
			t.Fatal("backend selection did not take effect")
		}
		var recRun, recPix EventRecord
		if err := pRun.ServeEvent(packets, &recRun); err != nil {
			t.Fatal(err)
		}
		if err := pPix.ServeEvent(packets, &recPix); err != nil {
			t.Fatal(err)
		}
		if len(recRun.Islands) != len(recPix.Islands) {
			t.Fatalf("run found %d islands, pixel %d", len(recRun.Islands), len(recPix.Islands))
		}
		// Both backends number islands 1..K in raster order of first
		// appearance, so records must match positionally and bit-exactly.
		for i := range recRun.Islands {
			if recRun.Islands[i] != recPix.Islands[i] {
				t.Fatalf("island %d: run %+v != pixel %+v", i, recRun.Islands[i], recPix.Islands[i])
			}
		}

		// Independent reference: rebuild the merged image from the packets
		// with the textbook per-channel math (integrate, subtract pedestal,
		// rounded photon count, suppress at ThresholdPE), then label it with
		// the ccl package in corrected-resolver mode.
		merged := make([]grid.Value, px)
		for pi := range packets {
			base := int(packets[pi].ASIC) * ChannelsPerASIC
			ints := packets[pi].Integrals()
			for ch, raw := range ints {
				fl := base + ch
				if fl >= px {
					continue
				}
				net := raw - cfg.PedestalPerSample*int64(cfg.SamplesPerChannel)
				if pc := PhotonCount(net, cfg.GainADC); pc > cfg.ThresholdPE {
					merged[fl] = pc
				}
			}
		}
		g, err := grid.FromFlat(rows, cols, merged)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ccl.Label(g, ccl.Options{
			Connectivity:  conn,
			Mode:          ccl.ModeFixed,
			CompactLabels: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ref := ccl.Islands(g, res.Labels)
		if len(ref) != len(recRun.Islands) {
			t.Fatalf("ccl.Label found %d islands, serving path %d", len(ref), len(recRun.Islands))
		}
		for i := range ref {
			var sum, rowM, colM int64
			for _, p := range ref[i].Pixels {
				v := int64(p.Value)
				sum += v
				rowM += int64(p.Row) * v
				colM += int64(p.Col) * v
			}
			got := recRun.Islands[i]
			if int(got.Label) != int(ref[i].Label) || int(got.Pixels) != len(ref[i].Pixels) || got.Sum != sum {
				t.Fatalf("island %d: serve label=%d pixels=%d sum=%d, ccl label=%d pixels=%d sum=%d",
					i, got.Label, got.Pixels, got.Sum, ref[i].Label, len(ref[i].Pixels), ref[i].Sum)
			}
			if got.RowQ16 != q16Ratio(rowM, sum) || got.ColQ16 != q16Ratio(colM, sum) {
				t.Fatalf("island %d: centroid (%d,%d) != reference (%d,%d)",
					i, got.RowQ16, got.ColQ16, q16Ratio(rowM, sum), q16Ratio(colM, sum))
			}
		}
	})
}
