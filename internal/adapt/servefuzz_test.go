package adapt

import (
	"bytes"
	"testing"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/design"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

// FuzzRunCCLvsPixel is the differential check behind the run-based serving
// backend: for a fuzzer-chosen geometry, connectivity, and photo-electron
// image, the same digitized event is served through the run engine and the
// per-pixel reference backend, and both are compared — field by field —
// against an independently computed merged image labeled by the ccl package
// (ModeFixed, compact labels). All three must agree on the partition, pixel
// counts, sums, and Q16.16 centroids.
//
// Geometry spans both engine extraction paths: cols ≤ 64 exercises the
// single-word narrow extractor, wider images the generic multi-word one.
func FuzzRunCCLvsPixel(f *testing.F) {
	f.Add(uint64(1), uint8(43), uint8(43), false, []byte{0, 5, 5, 0, 9})
	f.Add(uint64(2), uint8(8), uint8(10), true, []byte{3, 3, 3, 3, 3, 3, 3})
	f.Add(uint64(3), uint8(5), uint8(70), false, []byte{40, 0, 40, 0, 40})
	f.Add(uint64(4), uint8(1), uint8(64), true, []byte{7})
	f.Add(uint64(5), uint8(16), uint8(16), true, []byte{})
	f.Fuzz(func(t *testing.T, seed uint64, rowsB, colsB uint8, eight bool, pe []byte) {
		rows := 1 + int(rowsB%48)
		cols := 1 + int(colsB%70)
		px := rows * cols
		conn := grid.FourWay
		if eight {
			conn = grid.EightWay
		}
		cfg := Config{
			ASICs:             (px + ChannelsPerASIC - 1) / ChannelsPerASIC,
			SamplesPerChannel: 4,
			PedestalPerSample: 200,
			GainADC:           40,
			ThresholdPE:       2,
			Detection: design.TopConfig{
				TwoDimension: true,
				TwoD: design.Config{
					Rows: rows, Cols: cols,
					Connectivity: conn,
					Stage:        design.StagePipelined,
				},
			},
		}

		// Truth image from the fuzz payload: PE amplitudes 0..41, so the
		// population straddles the ThresholdPE=2 suppression cut.
		truth := make([]grid.Value, cfg.ASICs*ChannelsPerASIC)
		for i := 0; i < px; i++ {
			if len(pe) > 0 {
				truth[i] = grid.Value(pe[i%len(pe)] % 42)
			}
		}
		rng := detector.NewRNG(seed | 1)
		dig := detector.DefaultDigitizer()
		dig.Samples = cfg.SamplesPerChannel
		packets, err := GenerateEvent(truth, cfg.ASICs, 7, 0, dig, rng)
		if err != nil {
			t.Fatal(err)
		}

		runCfg, pixCfg := cfg, cfg
		runCfg.Serve = ServeRun
		pixCfg.Serve = ServePixel
		pRun, err := New(runCfg)
		if err != nil {
			t.Fatal(err)
		}
		pPix, err := New(pixCfg)
		if err != nil {
			t.Fatal(err)
		}
		if pRun.runEngine == nil || pPix.runEngine != nil {
			t.Fatal("backend selection did not take effect")
		}
		var recRun, recPix EventRecord
		if err := pRun.ServeEvent(packets, &recRun); err != nil {
			t.Fatal(err)
		}
		if err := pPix.ServeEvent(packets, &recPix); err != nil {
			t.Fatal(err)
		}
		if len(recRun.Islands) != len(recPix.Islands) {
			t.Fatalf("run found %d islands, pixel %d", len(recRun.Islands), len(recPix.Islands))
		}
		// Both backends number islands 1..K in raster order of first
		// appearance, so records must match positionally and bit-exactly.
		for i := range recRun.Islands {
			if recRun.Islands[i] != recPix.Islands[i] {
				t.Fatalf("island %d: run %+v != pixel %+v", i, recRun.Islands[i], recPix.Islands[i])
			}
		}

		// Independent reference: rebuild the merged image from the packets
		// with the textbook per-channel math (integrate, subtract pedestal,
		// rounded photon count, suppress at ThresholdPE), then label it with
		// the ccl package in corrected-resolver mode.
		merged := make([]grid.Value, px)
		for pi := range packets {
			base := int(packets[pi].ASIC) * ChannelsPerASIC
			ints := packets[pi].Integrals()
			for ch, raw := range ints {
				fl := base + ch
				if fl >= px {
					continue
				}
				net := raw - cfg.PedestalPerSample*int64(cfg.SamplesPerChannel)
				if pc := PhotonCount(net, cfg.GainADC); pc > cfg.ThresholdPE {
					merged[fl] = pc
				}
			}
		}
		g, err := grid.FromFlat(rows, cols, merged)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ccl.Label(g, ccl.Options{
			Connectivity:  conn,
			Mode:          ccl.ModeFixed,
			CompactLabels: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ref := ccl.Islands(g, res.Labels)
		if len(ref) != len(recRun.Islands) {
			t.Fatalf("ccl.Label found %d islands, serving path %d", len(ref), len(recRun.Islands))
		}
		for i := range ref {
			var sum, rowM, colM int64
			for _, p := range ref[i].Pixels {
				v := int64(p.Value)
				sum += v
				rowM += int64(p.Row) * v
				colM += int64(p.Col) * v
			}
			got := recRun.Islands[i]
			if int(got.Label) != int(ref[i].Label) || int(got.Pixels) != len(ref[i].Pixels) || got.Sum != sum {
				t.Fatalf("island %d: serve label=%d pixels=%d sum=%d, ccl label=%d pixels=%d sum=%d",
					i, got.Label, got.Pixels, got.Sum, ref[i].Label, len(ref[i].Pixels), ref[i].Sum)
			}
			if got.RowQ16 != q16Ratio(rowM, sum) || got.ColQ16 != q16Ratio(colM, sum) {
				t.Fatalf("island %d: centroid (%d,%d) != reference (%d,%d)",
					i, got.RowQ16, got.ColQ16, q16Ratio(rowM, sum), q16Ratio(colM, sum))
			}
		}
	})
}

// FuzzBatchVsSingle is the differential check behind the batch-resident
// serving path: a fuzzer-chosen batch of events — geometry, connectivity,
// sample depth, batch size, and payload all fuzzed — is served through
// ServeBatch and compared byte-for-byte (marshalled record bytes) against
// ServeEvent on the run backend and against the per-pixel reference backend,
// event by event. Fuzzer-chosen bits also shuffle some events' packet order —
// a valid but non-canonical stream that forces ServeBatch off the fused
// decode onto the reference route mid-batch — and may truncate the first
// event, checking error parity between the batched and single paths.
func FuzzBatchVsSingle(f *testing.F) {
	f.Add(uint64(1), uint8(43), uint8(43), false, uint8(4), uint8(3), uint8(0), []byte{0, 5, 5, 0, 9})
	f.Add(uint64(2), uint8(8), uint8(10), true, uint8(4), uint8(5), uint8(2), []byte{3, 3, 3, 3})
	f.Add(uint64(3), uint8(5), uint8(70), false, uint8(6), uint8(2), uint8(5), []byte{40, 0, 40})
	f.Add(uint64(4), uint8(16), uint8(16), true, uint8(4), uint8(7), uint8(255), []byte{7})
	f.Add(uint64(5), uint8(32), uint8(32), false, uint8(4), uint8(64), uint8(128), []byte{1, 2})
	f.Fuzz(func(t *testing.T, seed uint64, rowsB, colsB uint8, eight bool, spcB, nEvB, shufMask uint8, pe []byte) {
		rows := 1 + int(rowsB%48)
		cols := 1 + int(colsB%70)
		px := rows * cols
		spc := 1 + int(spcB%8) // 4 exercises the fused SWAR decode, the rest the generic loop
		nEv := 1 + int(nEvB%8)
		conn := grid.FourWay
		if eight {
			conn = grid.EightWay
		}
		cfg := Config{
			ASICs:             (px + ChannelsPerASIC - 1) / ChannelsPerASIC,
			SamplesPerChannel: spc,
			PedestalPerSample: 200,
			GainADC:           40,
			ThresholdPE:       2,
			Detection: design.TopConfig{
				TwoDimension: true,
				TwoD: design.Config{
					Rows: rows, Cols: cols,
					Connectivity: conn,
					Stage:        design.StagePipelined,
				},
			},
		}
		runCfg, pixCfg := cfg, cfg
		runCfg.Serve = ServeRun
		pixCfg.Serve = ServePixel
		pBatch, err := New(runCfg)
		if err != nil {
			t.Fatal(err)
		}
		pSingle, err := New(runCfg)
		if err != nil {
			t.Fatal(err)
		}
		pPix, err := New(pixCfg)
		if err != nil {
			t.Fatal(err)
		}

		rng := detector.NewRNG(seed | 1)
		dig := detector.DefaultDigitizer()
		dig.Samples = spc
		events := make([][]Packet, nEv)
		for e := range events {
			truth := make([]grid.Value, cfg.ASICs*ChannelsPerASIC)
			for i := 0; i < px; i++ {
				if len(pe) > 0 {
					truth[i] = grid.Value(pe[(i+e)%len(pe)] % 42)
				}
			}
			packets, err := GenerateEvent(truth, cfg.ASICs, uint32(100+e), uint64(e), dig, rng)
			if err != nil {
				t.Fatal(err)
			}
			if shufMask>>(e%8)&1 == 1 && len(packets) > 1 {
				// Break canonical order: still a complete, valid event, but the
				// fused decode must reject it and the reference route serve it.
				packets[0], packets[len(packets)-1] = packets[len(packets)-1], packets[0]
			}
			events[e] = packets
		}
		if nEvB>>7 == 1 && len(events[0]) > 1 {
			// Truncated first event: both paths must fail it, identically,
			// without poisoning the rest of the batch.
			events[0] = events[0][:len(events[0])-1]
		}

		recs := make([]EventRecord, nEv)
		errs := make([]error, nEv)
		okBatch := pBatch.ServeBatch(events, recs, errs)

		okSingle := 0
		var recS, recP EventRecord
		for e := range events {
			errS := pSingle.ServeEvent(events[e], &recS)
			if errS != nil {
				if errs[e] == nil {
					t.Fatalf("event %d: ServeEvent failed (%v), ServeBatch succeeded", e, errS)
				}
				if errs[e].Error() != errS.Error() {
					t.Fatalf("event %d: batch error %q != single error %q", e, errs[e], errS)
				}
				continue
			}
			okSingle++
			if errs[e] != nil {
				t.Fatalf("event %d: ServeBatch failed (%v), ServeEvent succeeded", e, errs[e])
			}
			bb := recs[e].AppendTo(nil)
			sb := recS.AppendTo(nil)
			if !bytes.Equal(bb, sb) {
				t.Fatalf("event %d: batched record bytes differ from single-event bytes\nbatch:  %v\nsingle: %v",
					e, recs[e], recS)
			}
			if err := pPix.ServeEvent(events[e], &recP); err != nil {
				t.Fatalf("event %d: pixel reference failed: %v", e, err)
			}
			if !bytes.Equal(bb, recP.AppendTo(nil)) {
				t.Fatalf("event %d: batched record bytes differ from pixel reference\nbatch: %v\npixel: %v",
					e, recs[e], recP)
			}
		}
		if okBatch != okSingle {
			t.Fatalf("ServeBatch reported %d served, single path %d", okBatch, okSingle)
		}
	})
}
