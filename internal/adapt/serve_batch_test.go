package adapt

import (
	"bytes"
	"testing"
)

// TestServeBatchMatchesServeEvent is the deterministic tier-1 version of
// FuzzBatchVsSingle: CTA shower batches through ServeBatch must serialize to
// exactly the bytes the single-event path produces, at both sample depths
// (4 exercises the fused SWAR decode, 16 the generic loop).
func TestServeBatchMatchesServeEvent(t *testing.T) {
	for _, samples := range []int{4, 16} {
		cfg := DefaultCTA()
		cfg.SamplesPerChannel = samples
		pb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const n = 32
		events := ctaEvents(t, cfg, n, 21)
		recs := make([]EventRecord, n)
		errs := make([]error, n)
		if got := pb.ServeBatch(events, recs, errs); got != n {
			t.Fatalf("samples=%d: ServeBatch served %d of %d", samples, got, n)
		}
		var rec EventRecord
		for i := range events {
			if errs[i] != nil {
				t.Fatalf("samples=%d event %d: %v", samples, i, errs[i])
			}
			if err := ps.ServeEvent(events[i], &rec); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(recs[i].AppendTo(nil), rec.AppendTo(nil)) {
				t.Fatalf("samples=%d event %d: batched record differs from single-event record",
					samples, i)
			}
		}
	}
}

// TestServeBatchBadEvent checks per-event error isolation: a broken event in
// the middle of a batch fails alone, with the same error as the single path,
// and its neighbours still serve.
func TestServeBatchBadEvent(t *testing.T) {
	cfg := DefaultCTA()
	cfg.SamplesPerChannel = 4
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := ctaEvents(t, cfg, 3, 9)
	events[1] = events[1][:len(events[1])-1] // drop an ASIC
	recs := make([]EventRecord, 3)
	errs := make([]error, 3)
	if got := p.ServeBatch(events, recs, errs); got != 2 {
		t.Fatalf("ServeBatch served %d, want 2", got)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy events failed: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("truncated event must fail")
	}
	var rec EventRecord
	if err := ps.ServeEvent(events[1], &rec); err == nil || err.Error() != errs[1].Error() {
		t.Fatalf("batch error %q, single-path error %v", errs[1], err)
	}
}

// BenchmarkServeBatchShowers serves batches of distinct CTA shower events —
// unlike the repo-level BenchmarkServeBatch (one 2%-occupancy frame repeated,
// hot in cache), every event here is different, so the decode walks a cold
// ~30 KB packet block per event. This is the memory-bound upper envelope of
// per-event cost; the gated 2% number is the compute envelope.
func BenchmarkServeBatchShowers(b *testing.B) {
	cfg := DefaultCTA()
	cfg.SamplesPerChannel = 4
	const serveBatchN = 64
	events := ctaEvents(b, cfg, serveBatchN, 7)
	recs := make([]EventRecord, serveBatchN)
	errs := make([]error, serveBatchN)
	p, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if got := p.ServeBatch(events, recs, errs); got != serveBatchN {
		b.Fatalf("warmup served %d of %d", got, serveBatchN)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.ServeBatch(events, recs, errs); got != serveBatchN {
			b.Fatalf("served %d of %d", got, serveBatchN)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*serveBatchN), "ns/event")
}
