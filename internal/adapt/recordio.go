package adapt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Downlink record stream I/O shared by every consumer of hepccld's response
// stream: loadgen's record readers and the gateway's backend-connection
// relays. A record is the EventRecord wire form — an 8-byte header (event
// id, island count) followed by fixed-size island entries.

const (
	// RecordHeaderBytes is the downlink record header size (event id + count).
	RecordHeaderBytes = 8
	// RecordIslandBytes is the size of one serialized island entry (label u32,
	// pixels u32, sum u64, row/col centroid Q16.16).
	RecordIslandBytes = 24
)

// DeadlineRearmEvery is how many reads one armed deadline covers. Re-arming
// per record is a measurable share of client CPU at saturation (records
// arrive tens of thousands of times per second on a shared loopback host); a
// stalled peer still trips the deadline armed at the head of the current
// window. Extracted from loadgen's reader so every consumer of the record
// stream amortizes identically.
const DeadlineRearmEvery = 64

// ReadDeadliner is the slice of net.Conn a DeadlineRearmer needs.
type ReadDeadliner interface {
	SetReadDeadline(t time.Time) error
}

// DeadlineRearmer arms a read deadline on the first Tick and every
// DeadlineRearmEvery-th thereafter. A zero timeout disables it.
type DeadlineRearmer struct {
	conn    ReadDeadliner
	timeout time.Duration
	n       uint64
}

// NewDeadlineRearmer returns a rearmer over conn. A zero timeout (or nil
// conn) yields a no-op rearmer.
func NewDeadlineRearmer(conn ReadDeadliner, timeout time.Duration) *DeadlineRearmer {
	return &DeadlineRearmer{conn: conn, timeout: timeout}
}

// Tick counts one read and re-arms the deadline at window boundaries.
//
//hepccl:hotpath
func (d *DeadlineRearmer) Tick() error {
	if d.timeout > 0 && d.n%DeadlineRearmEvery == 0 {
		//hepccl:coldpath
		if err := d.conn.SetReadDeadline(time.Now().Add(d.timeout)); err != nil {
			return err
		}
	}
	d.n++
	return nil
}

// RecordScanner frames downlink records off a response stream. Records are
// returned as raw wire bytes valid until the next call, so a relay can write
// them through verbatim and an analyzer can decode only the fields it needs.
type RecordScanner struct {
	br  *bufio.Reader
	arm *DeadlineRearmer
	// big is the spill buffer for a record larger than the read window
	// (island counts beyond ~3000; never seen from a real pipeline but the
	// scanner must not wedge on one).
	big []byte
	// Records and Islands count successfully framed records and their
	// aggregate island entries.
	Records int
	Islands int
}

// NewRecordScanner returns a scanner over r. arm may be nil (no deadline
// management — the caller owns it).
func NewRecordScanner(r io.Reader, arm *DeadlineRearmer) *RecordScanner {
	if arm == nil {
		arm = &DeadlineRearmer{}
	}
	return &RecordScanner{br: bufio.NewReaderSize(r, streamBufSize), arm: arm}
}

// Buffered reports un-consumed bytes in the read window; a relay flushes its
// downstream writer when no complete record remains buffered.
//
//hepccl:hotpath
func (rs *RecordScanner) Buffered() int { return rs.br.Buffered() }

// Next returns the raw bytes of the next record (header through last island
// entry), valid until the following call. It returns io.EOF only at a clean
// end of stream on a record boundary; a stream ending mid-record is an
// error.
//
//hepccl:hotpath
func (rs *RecordScanner) Next() ([]byte, error) {
	if err := rs.arm.Tick(); err != nil {
		//hepccl:coldpath
		return nil, wrapErr(err)
	}
	hdr, err := rs.br.Peek(RecordHeaderBytes)
	if err != nil {
		//hepccl:coldpath
		if err == io.EOF {
			if len(hdr) == 0 {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("adapt: stream ended mid-record header (%d bytes)", len(hdr))
		}
		return nil, wrapErr(err)
	}
	n := int(binary.BigEndian.Uint32(hdr[4:]))
	total := RecordHeaderBytes + n*RecordIslandBytes
	rec, err := rs.br.Peek(total)
	if err == nil {
		rs.br.Discard(total)
		rs.Records++
		rs.Islands += n
		return rec, nil
	}
	//hepccl:coldpath
	if err == bufio.ErrBufferFull {
		// Oversized record: stage it through the spill buffer.
		//hepccl:amortized
		if cap(rs.big) < total {
			rs.big = make([]byte, total)
		}
		if _, err := io.ReadFull(rs.br, rs.big[:total]); err != nil {
			return nil, wrapErr(err)
		}
		rs.Records++
		rs.Islands += n
		return rs.big[:total], nil
	}
	//hepccl:coldpath
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return nil, fmt.Errorf("adapt: stream ended mid-record: have %d of %d bytes", len(rec), total)
	}
	//hepccl:coldpath
	return nil, wrapErr(err)
}

// RecordEventID reads the event id out of a framed record.
//
//hepccl:hotpath
func RecordEventID(rec []byte) uint32 { return binary.BigEndian.Uint32(rec) }

// RecordIslandCount reads the island count out of a framed record.
//
//hepccl:hotpath
func RecordIslandCount(rec []byte) int { return int(binary.BigEndian.Uint32(rec[4:])) }
