package adapt

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// eventBytes marshals an event's frames back-to-back.
func eventBytes(t *testing.T, packets []Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := NewStreamWriter(&buf).WriteEvent(packets); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCaptureCleanStream(t *testing.T) {
	const asics = 3
	evA := makePackets(t, asics, 1)
	evB := makePackets(t, asics, 2)
	rawA := eventBytes(t, evA)
	rawB := eventBytes(t, evB)

	sr := NewStreamReader(bytes.NewReader(append(append([]byte(nil), rawA...), rawB...)))
	sr.SetCapture(true)
	var dst []Packet
	for i, want := range [][]byte{rawA, rawB} {
		var err error
		dst, err = sr.ReadEventInto(dst, asics)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !bytes.Equal(sr.Captured(), want) {
			t.Fatalf("event %d: captured %d bytes, want %d verbatim", i, len(sr.Captured()), len(want))
		}
	}
}

func TestCaptureSkipsGarbage(t *testing.T) {
	const asics = 2
	ev := makePackets(t, asics, 5)
	raw := eventBytes(t, ev)
	stream := append([]byte{0xDE, 0xAD, 0xA1, 0x00}, raw...)

	sr := NewStreamReader(bytes.NewReader(stream))
	sr.SetCapture(true)
	if _, err := sr.ReadEventInto(nil, asics); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sr.Captured(), raw) {
		t.Fatal("capture included skipped garbage")
	}
	if sr.SkippedBytes == 0 {
		t.Fatal("garbage not counted as skipped")
	}
}

func TestCaptureCorruptedFrameDropped(t *testing.T) {
	const asics = 2
	ev := makePackets(t, asics, 5)
	f0, err := ev[0].Marshal()
	if err != nil {
		t.Fatal(err)
	}
	f1, err := ev[1].Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// A corrupted copy of frame 0 precedes the real event: its checksum fails,
	// so it must be resynced past and never captured.
	badF0 := append([]byte(nil), f0...)
	badF0[len(badF0)/2] ^= 0xFF
	stream := append(append(append([]byte(nil), badF0...), f0...), f1...)

	sr := NewStreamReader(bytes.NewReader(stream))
	sr.SetCapture(true)
	if _, err := sr.ReadEventInto(nil, asics); err != nil {
		t.Fatal(err)
	}
	if want := append(append([]byte(nil), f0...), f1...); !bytes.Equal(sr.Captured(), want) {
		t.Fatalf("captured %d bytes, want the %d clean bytes only", len(sr.Captured()), len(want))
	}
	if sr.BadPackets == 0 {
		t.Fatal("corrupted frame not counted")
	}
}

// TestCaptureInterruptedAssembly exercises the heldRaw path: an assembly of
// event 1 is interrupted by event 2's first frame; the retained frame's bytes
// must seed event 2's capture.
func TestCaptureInterruptedAssembly(t *testing.T) {
	const asics = 3
	ev1 := makePackets(t, asics, 1)
	ev2 := makePackets(t, asics, 2)
	raw2 := eventBytes(t, ev2)
	// Event 1 loses its last frame; event 2 follows in full.
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	if err := sw.WritePacket(&ev1[0]); err != nil {
		t.Fatal(err)
	}
	if err := sw.WritePacket(&ev1[1]); err != nil {
		t.Fatal(err)
	}
	buf.Write(raw2)

	sr := NewStreamReader(&buf)
	sr.SetCapture(true)
	if _, err := sr.ReadEventInto(nil, asics); !errors.Is(err, ErrIncompleteEvent) {
		t.Fatalf("want ErrIncompleteEvent, got %v", err)
	}
	dst, err := sr.ReadEventInto(nil, asics)
	if err != nil {
		t.Fatal(err)
	}
	if dst[0].Event != 2 {
		t.Fatalf("resumed assembly got event %d, want 2", dst[0].Event)
	}
	if !bytes.Equal(sr.Captured(), raw2) {
		t.Fatalf("captured %d bytes for the resumed event, want %d verbatim", len(sr.Captured()), len(raw2))
	}
}

// TestCaptureSkimInterruption: a skim of a condemned event is interrupted by a
// packet from the next event; that packet's raw bytes must survive into the
// next real assembly's capture.
func TestCaptureSkimInterruption(t *testing.T) {
	const asics = 3
	ev1 := makePackets(t, asics, 1)
	ev2 := makePackets(t, asics, 2)
	raw2 := eventBytes(t, ev2)
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	// Event 1 is short one frame, so the skim runs into event 2.
	if err := sw.WritePacket(&ev1[0]); err != nil {
		t.Fatal(err)
	}
	if err := sw.WritePacket(&ev1[1]); err != nil {
		t.Fatal(err)
	}
	buf.Write(raw2)

	sr := NewStreamReader(&buf)
	sr.SetCapture(true)
	if _, err := sr.SkimEvent(asics); !errors.Is(err, ErrIncompleteEvent) {
		t.Fatalf("want ErrIncompleteEvent from skim, got %v", err)
	}
	dst, err := sr.ReadEventInto(nil, asics)
	if err != nil {
		t.Fatal(err)
	}
	if dst[0].Event != 2 {
		t.Fatalf("post-skim assembly got event %d, want 2", dst[0].Event)
	}
	if !bytes.Equal(sr.Captured(), raw2) {
		t.Fatalf("captured %d bytes after skim interruption, want %d verbatim", len(sr.Captured()), len(raw2))
	}
	if _, err := sr.ReadEventInto(dst, asics); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

// TestCaptureSkimmedEventNotCaptured: a completed skim leaves no capture.
func TestCaptureSkimmedEventNotCaptured(t *testing.T) {
	const asics = 2
	ev1 := makePackets(t, asics, 1)
	ev2 := makePackets(t, asics, 2)
	raw2 := eventBytes(t, ev2)
	stream := append(eventBytes(t, ev1), raw2...)

	sr := NewStreamReader(bytes.NewReader(stream))
	sr.SetCapture(true)
	if _, err := sr.SkimEvent(asics); err != nil {
		t.Fatal(err)
	}
	if len(sr.Captured()) != 0 {
		t.Fatalf("skim captured %d bytes, want 0", len(sr.Captured()))
	}
	if _, err := sr.ReadEventInto(nil, asics); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sr.Captured(), raw2) {
		t.Fatal("assembly after skim captured wrong bytes")
	}
}

func TestCaptureOffByDefault(t *testing.T) {
	const asics = 2
	stream := eventBytes(t, makePackets(t, asics, 1))
	sr := NewStreamReader(bytes.NewReader(stream))
	if _, err := sr.ReadEventInto(nil, asics); err != nil {
		t.Fatal(err)
	}
	if len(sr.Captured()) != 0 {
		t.Fatalf("capture accumulated %d bytes while off", len(sr.Captured()))
	}
}
