package adapt

import (
	"math"
	"testing"
)

func ctaPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := New(DefaultCTA())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSimulateTriggerLightLoad(t *testing.T) {
	p := ctaPipeline(t) // capacity ≈ 15.2k events/s
	res, err := p.SimulateTrigger(TriggerConfig{RateHz: 3000, FIFODepth: 4, Events: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// At ρ≈0.2 the tail probability of a full 4-deep FIFO is ~ρ⁵: losses
	// must be well under 0.1% but need not be exactly zero.
	if res.LossFraction > 0.001 {
		t.Fatalf("light load loss = %.5f, want < 0.001", res.LossFraction)
	}
	if res.Accepted+res.Dropped != res.Offered {
		t.Fatal("accounting broken")
	}
	// ρ ≈ λ·s ≈ 3000/15209 ≈ 0.197.
	if math.Abs(res.Utilization-0.197) > 0.03 {
		t.Fatalf("utilization = %.3f, want ≈0.20", res.Utilization)
	}
}

func TestSimulateTriggerOverload(t *testing.T) {
	p := ctaPipeline(t)
	// 2× overload: losses approach 1 - capacity/rate ≈ 0.5.
	res, err := p.SimulateTrigger(TriggerConfig{RateHz: 30000, FIFODepth: 8, Events: 30000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.LossFraction < 0.40 || res.LossFraction > 0.60 {
		t.Fatalf("overload loss = %.3f, want ≈0.5", res.LossFraction)
	}
	if res.Utilization < 0.97 {
		t.Fatalf("overloaded pipeline should be saturated, ρ = %.3f", res.Utilization)
	}
	if res.Accepted+res.Dropped != res.Offered {
		t.Fatal("conservation broken")
	}
}

func TestSimulateTriggerFIFODepthMatters(t *testing.T) {
	p := ctaPipeline(t)
	// Near-critical load (ρ ≈ 0.92): a deeper derandomizer cuts losses.
	base := TriggerConfig{RateHz: 14000, Events: 40000, Seed: 3}
	shallow := base
	shallow.FIFODepth = 1
	deep := base
	deep.FIFODepth = 64
	rs, err := p.SimulateTrigger(shallow)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := p.SimulateTrigger(deep)
	if err != nil {
		t.Fatal(err)
	}
	if rs.LossFraction <= rd.LossFraction {
		t.Fatalf("deeper FIFO must reduce losses: %.4f vs %.4f", rs.LossFraction, rd.LossFraction)
	}
	if rd.LossFraction > 0.01 {
		t.Fatalf("64-deep FIFO at ρ≈0.92 should lose <1%%, got %.4f", rd.LossFraction)
	}
	if rd.MaxQueue <= rs.MaxQueue {
		t.Fatal("deeper FIFO should actually be used")
	}
}

func TestSimulateTriggerZeroFIFO(t *testing.T) {
	p := ctaPipeline(t)
	// No derandomizer at all: the classic non-paralyzable deadtime formula
	// loss ≈ ρ/(1+ρ) for Poisson arrivals.
	res, err := p.SimulateTrigger(TriggerConfig{RateHz: 15000, FIFODepth: 0, Events: 40000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rho := 15000.0 / 15209.0
	want := rho / (1 + rho)
	if math.Abs(res.LossFraction-want) > 0.03 {
		t.Fatalf("zero-FIFO loss = %.3f, want ≈%.3f", res.LossFraction, want)
	}
}

func TestSimulateTriggerValidation(t *testing.T) {
	p := ctaPipeline(t)
	for _, cfg := range []TriggerConfig{
		{RateHz: 0, Events: 10},
		{RateHz: 100, Events: 0},
		{RateHz: 100, Events: 10, FIFODepth: -1},
	} {
		if _, err := p.SimulateTrigger(cfg); err == nil {
			t.Errorf("config %+v must error", cfg)
		}
	}
}

func TestSimulateTriggerDeterminism(t *testing.T) {
	p := ctaPipeline(t)
	cfg := TriggerConfig{RateHz: 12000, FIFODepth: 4, Events: 5000, Seed: 7}
	a, err := p.SimulateTrigger(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.SimulateTrigger(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed must reproduce the simulation")
	}
}
