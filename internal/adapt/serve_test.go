package adapt

import (
	"math"
	"sort"
	"testing"

	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

// ctaEvents digitizes n shower events for a CTA-style config.
func ctaEvents(t testing.TB, cfg Config, n int, seed uint64) [][]Packet {
	t.Helper()
	rng := detector.NewRNG(seed)
	dig := detector.DefaultDigitizer()
	dig.Samples = cfg.SamplesPerChannel
	cam := detector.LSTCamera()
	events := make([][]Packet, n)
	for i := range events {
		g := cam.Shower(cam.TypicalShower(rng), rng)
		packets, err := GenerateEvent(g.Flat(), cfg.ASICs, uint32(i), uint64(i), dig, rng)
		if err != nil {
			t.Fatal(err)
		}
		events[i] = packets
	}
	return events
}

// islandKey sorts island records into a label-independent order: ServeEvent
// numbers islands compactly in raster order while the hardware model keeps
// merge-table roots, so only the partition and its statistics must agree.
func sortIslands(islands []IslandRecord) {
	sort.Slice(islands, func(i, j int) bool {
		a, b := islands[i], islands[j]
		if a.Sum != b.Sum {
			return a.Sum < b.Sum
		}
		if a.Pixels != b.Pixels {
			return a.Pixels < b.Pixels
		}
		return a.RowQ16 < b.RowQ16
	})
}

// TestServeEventMatchesProcessEvent checks the serving fast path against the
// cycle-accurate pipeline on 2D shower events: same islands, same pixel
// counts and sums, centroids within fixed-point rounding distance.
func TestServeEventMatchesProcessEvent(t *testing.T) {
	for _, samples := range []int{16, 4} {
		cfg := DefaultCTA()
		cfg.SamplesPerChannel = samples
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, packets := range ctaEvents(t, cfg, 8, 7) {
			res, err := p.ProcessEvent(packets)
			if err != nil {
				t.Fatal(err)
			}
			full := RecordOf(res)
			var rec EventRecord
			if err := p.ServeEvent(packets, &rec); err != nil {
				t.Fatal(err)
			}
			if rec.Event != full.Event {
				t.Fatalf("samples=%d: event id %d, want %d", samples, rec.Event, full.Event)
			}
			if len(rec.Islands) != len(full.Islands) {
				t.Fatalf("samples=%d event %d: serve found %d islands, process %d",
					samples, rec.Event, len(rec.Islands), len(full.Islands))
			}
			got := append([]IslandRecord(nil), rec.Islands...)
			want := append([]IslandRecord(nil), full.Islands...)
			sortIslands(got)
			sortIslands(want)
			for i := range got {
				if got[i].Pixels != want[i].Pixels || got[i].Sum != want[i].Sum {
					t.Fatalf("samples=%d event %d island %d: got pixels=%d sum=%d, want pixels=%d sum=%d",
						samples, rec.Event, i, got[i].Pixels, got[i].Sum, want[i].Pixels, want[i].Sum)
				}
				// Both sides divide the same integer moments; allow one
				// Q16.16 LSB of rounding skew.
				if dr := math.Abs(float64(got[i].RowQ16 - want[i].RowQ16)); dr > 1 {
					t.Fatalf("samples=%d event %d island %d: row centroid off by %v Q16 LSB",
						samples, rec.Event, i, dr)
				}
				if dc := math.Abs(float64(got[i].ColQ16 - want[i].ColQ16)); dc > 1 {
					t.Fatalf("samples=%d event %d island %d: col centroid off by %v Q16 LSB",
						samples, rec.Event, i, dc)
				}
			}
			total += len(rec.Islands)
		}
		if total == 0 {
			t.Fatalf("samples=%d: no islands in any event; workload broken", samples)
		}
	}
}

// TestServeEvent1DMatchesProcessEvent does the same for the 1D tracker path.
func TestServeEvent1DMatchesProcessEvent(t *testing.T) {
	cfg := DefaultADAPT()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := detector.NewRNG(9)
	dig := detector.DefaultDigitizer()
	tracker := detector.DefaultTracker()
	tracker.Channels = cfg.ASICs * ChannelsPerASIC
	tracker.Threshold = 0
	for ev := 0; ev < 8; ev++ {
		packets, err := GenerateEvent(tracker.Event(rng).Values, cfg.ASICs, uint32(ev), 0, dig, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.ProcessEvent(packets)
		if err != nil {
			t.Fatal(err)
		}
		full := RecordOf(res)
		var rec EventRecord
		if err := p.ServeEvent(packets, &rec); err != nil {
			t.Fatal(err)
		}
		if len(rec.Islands) != len(full.Islands) {
			t.Fatalf("event %d: serve found %d islands, process %d",
				ev, len(rec.Islands), len(full.Islands))
		}
		for i := range rec.Islands {
			g, w := rec.Islands[i], full.Islands[i]
			if g.Pixels != w.Pixels || g.Sum != w.Sum {
				t.Fatalf("event %d island %d: got pixels=%d sum=%d, want pixels=%d sum=%d",
					ev, i, g.Pixels, g.Sum, w.Pixels, w.Sum)
			}
			if d := math.Abs(float64(g.ColQ16 - w.ColQ16)); d > 1 {
				t.Fatalf("event %d island %d: centroid off by %v Q16 LSB", ev, i, d)
			}
		}
	}
}

// TestServeEventEightWay covers the 8-way connectivity branch of the inline
// labeler against the reference pipeline.
func TestServeEventEightWay(t *testing.T) {
	cfg := DefaultCTA()
	cfg.Detection.TwoD.Connectivity = grid.EightWay
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, packets := range ctaEvents(t, cfg, 4, 13) {
		res, err := p.ProcessEvent(packets)
		if err != nil {
			t.Fatal(err)
		}
		var rec EventRecord
		if err := p.ServeEvent(packets, &rec); err != nil {
			t.Fatal(err)
		}
		if len(rec.Islands) != len(RecordOf(res).Islands) {
			t.Fatalf("event %d: 8-way island count mismatch", rec.Event)
		}
	}
}

func TestServeEventRejectsBadEvent(t *testing.T) {
	cfg := DefaultCTA()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := ctaEvents(t, cfg, 1, 1)
	var rec EventRecord
	if err := p.ServeEvent(events[0][:len(events[0])-1], &rec); err == nil {
		t.Fatal("missing ASIC must be rejected")
	}
}

func BenchmarkServeEventCTA(b *testing.B) {
	for _, samples := range []int{16, 4} {
		name := "samples=16"
		if samples == 4 {
			name = "samples=4"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultCTA()
			cfg.SamplesPerChannel = samples
			p, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			packets := ctaEvents(b, cfg, 1, 1)[0]
			var rec EventRecord
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.ServeEvent(packets, &rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkProcessEventCTA(b *testing.B) {
	cfg := DefaultCTA()
	p, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	packets := ctaEvents(b, cfg, 1, 1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ProcessEvent(packets); err != nil {
			b.Fatal(err)
		}
	}
}
