package adapt

import (
	"math"
	"sort"
	"testing"

	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

func testStation(t *testing.T, asics int) *Instrument {
	t.Helper()
	cfg := DefaultADAPT()
	cfg.ASICs = asics
	ins, err := NewInstrument(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestNewInstrumentRejects2D(t *testing.T) {
	if _, err := NewInstrument(DefaultCTA()); err == nil {
		t.Fatal("2D config must be rejected")
	}
}

func TestStationReconstructsPoints(t *testing.T) {
	ins := testStation(t, 4) // 64 channels per layer
	dig := detector.DefaultDigitizer()
	dig.NoiseRMS = 0

	// Two well-separated interactions with distinct energies.
	x := make([]grid.Value, 64)
	y := make([]grid.Value, 64)
	// Interaction A: bright, at (row 10, col 50).
	x[50], x[51] = 40, 38
	y[10], y[11] = 42, 40
	// Interaction B: dim, at (row 40, col 20).
	x[20], x[21] = 9, 8
	y[40], y[41] = 8, 9

	xp, err := GenerateEvent(x, 4, 5, 0, dig, nil)
	if err != nil {
		t.Fatal(err)
	}
	yp, err := GenerateEvent(y, 4, 5, 0, dig, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := ins.ProcessEvent(xp, yp)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(ev.Points))
	}
	if ev.UnpairedX != 0 || ev.UnpairedY != 0 {
		t.Fatalf("unpaired = %d/%d", ev.UnpairedX, ev.UnpairedY)
	}
	a := ev.Points[0] // brightest first
	if math.Abs(a.Col-50.5) > 0.2 || math.Abs(a.Row-10.5) > 0.2 {
		t.Fatalf("bright point at (%.2f, %.2f), want ≈(10.5, 50.5)", a.Row, a.Col)
	}
	b := ev.Points[1]
	if math.Abs(b.Col-20.5) > 0.3 || math.Abs(b.Row-40.5) > 0.3 {
		t.Fatalf("dim point at (%.2f, %.2f), want ≈(40.5, 20.5)", b.Row, b.Col)
	}
	if a.Balance <= 0 || a.Balance > 1 || b.Balance <= 0 || b.Balance > 1 {
		t.Fatalf("balance out of range: %v %v", a.Balance, b.Balance)
	}
}

func TestStationUnpairedIslands(t *testing.T) {
	ins := testStation(t, 2)
	dig := detector.DefaultDigitizer()
	dig.NoiseRMS = 0
	x := make([]grid.Value, 32)
	y := make([]grid.Value, 32)
	x[5], x[20] = 20, 15 // two X islands
	y[9] = 18            // one Y island
	xp, _ := GenerateEvent(x, 2, 1, 0, dig, nil)
	yp, _ := GenerateEvent(y, 2, 1, 0, dig, nil)
	ev, err := ins.ProcessEvent(xp, yp)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Points) != 1 || ev.UnpairedX != 1 || ev.UnpairedY != 0 {
		t.Fatalf("pairing wrong: %+v", ev)
	}
}

func TestStationEventIDMismatch(t *testing.T) {
	ins := testStation(t, 2)
	dig := detector.DefaultDigitizer()
	dig.NoiseRMS = 0
	xp, _ := GenerateEvent(nil, 2, 1, 0, dig, nil)
	yp, _ := GenerateEvent(nil, 2, 2, 0, dig, nil)
	if _, err := ins.ProcessEvent(xp, yp); err == nil {
		t.Fatal("event id mismatch must error")
	}
}

// End-to-end resolution study on generated XY events: reconstructed points
// land near truth for isolated interactions.
func TestStationResolutionOnGeneratedEvents(t *testing.T) {
	ins := testStation(t, 4)
	tracker := detector.DefaultTracker()
	tracker.Channels = 64
	tracker.MeanInteractions = 1.2
	tracker.Threshold = 0
	tracker.PEMin = 40
	dig := detector.DefaultDigitizer()
	dig.NoiseRMS = 0
	rng := detector.NewRNG(808)

	matched, total := 0, 0
	for e := 0; e < 60; e++ {
		ev := tracker.XYEvent(rng)
		if len(ev.Truth) == 0 {
			continue
		}
		xp, err := GenerateEvent(ev.X, 4, uint32(e), 0, dig, nil)
		if err != nil {
			t.Fatal(err)
		}
		yp, err := GenerateEvent(ev.Y, 4, uint32(e), 0, dig, nil)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := ins.ProcessEvent(xp, yp)
		if err != nil {
			t.Fatal(err)
		}
		// Energy-rank pairing is exact only for single-interaction events;
		// multi-interaction events suffer the classic XY-readout "ghost"
		// ambiguity, which a rank-based event builder cannot resolve.
		if len(ev.Truth) != 1 {
			continue
		}
		for _, tr := range ev.Truth {
			if tr.Col < 3 || tr.Col > 60 || tr.Row < 3 || tr.Row > 60 {
				continue // edge deposits lose light off-array
			}
			total++
			best := math.Inf(1)
			for _, p := range rec.Points {
				d := math.Hypot(p.Row-tr.Row, p.Col-tr.Col)
				if d < best {
					best = d
				}
			}
			if best < 1.5 {
				matched++
			}
		}
	}
	if total < 12 {
		t.Fatalf("only %d usable truth points", total)
	}
	if matched < total*3/4 {
		t.Fatalf("matched %d/%d truth points", matched, total)
	}
}

func TestStationRate(t *testing.T) {
	ins := testStation(t, 20)
	if eps := ins.EventsPerSecond(); math.Abs(eps-297619) > 1 {
		t.Fatalf("station rate = %v, want single-layer 297619", eps)
	}
}

func TestXYEventGeneratorProperties(t *testing.T) {
	tracker := detector.DefaultTracker()
	tracker.Channels = 96
	rng := detector.NewRNG(55)
	sawBoth := false
	for i := 0; i < 30; i++ {
		ev := tracker.XYEvent(rng)
		if len(ev.X) != 96 || len(ev.Y) != 96 {
			t.Fatal("layer lengths wrong")
		}
		var xSum, ySum int64
		for _, v := range ev.X {
			xSum += int64(v)
		}
		for _, v := range ev.Y {
			ySum += int64(v)
		}
		if len(ev.Truth) > 0 && xSum > 0 && ySum > 0 {
			sawBoth = true
			// Total light is split: both layers see a comparable order of
			// magnitude when deposits exist.
			sorted := []int64{xSum, ySum}
			sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
			if sorted[1] > 20*sorted[0]+100 {
				t.Fatalf("layer energies wildly unbalanced: %d vs %d", xSum, ySum)
			}
		}
	}
	if !sawBoth {
		t.Fatal("no two-layer deposits generated in 30 events")
	}
}
