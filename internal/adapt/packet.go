// Package adapt implements the ADAPT prototype FPGA data-processing pipeline
// of Fig 3 as a functional simulation: ALPHA digitizer packet handling,
// pedestal subtraction, photon counting, zero-suppression, the Merge module
// that fuses 16-channel ASIC streams into one event-wide array, and the
// island detection + centroiding back end with the TWO_DIMENSION compile-time
// switch from §5.1. It is the substrate the paper's contribution plugs into.
package adapt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// ChannelsPerASIC is the channel count of one ALPHA waveform digitizer ASIC
// (§4.1: "multiple 16-channel digitizer ASICs").
const ChannelsPerASIC = 16

// PacketMagic marks the start of a digitizer packet.
const PacketMagic uint16 = 0xA1FA

// Header is the fixed preamble of one digitizer packet.
type Header struct {
	// Magic must equal PacketMagic.
	Magic uint16
	// ASIC is the low byte of the source digitizer index within the event.
	ASIC uint8
	// Flags is the high byte of the digitizer index. Historically this byte
	// carried readout status bits with 0 = nominal, and every configuration
	// of at most 256 ASICs still writes 0 here — those wire frames are
	// bit-identical to the original format. Megapixel frame geometries need
	// more digitizers than one byte can address (a 512×512 frame is 16384
	// 16-channel ASICs), so the otherwise-unused byte extends the index:
	// ASICIndex() = Flags<<8 | ASIC, addressing up to 65536 ASICs.
	Flags uint8
	// Event is the trigger sequence number.
	Event uint32
	// Timestamp is the trigger time in clock ticks.
	Timestamp uint64
	// SamplesPerChannel is the waveform window length.
	SamplesPerChannel uint8
}

// Packet is one triggered readout of a 16-channel digitizer: a header plus
// SamplesPerChannel ADC samples for each channel.
type Packet struct {
	Header
	// block, when non-nil, is the contiguous channel-major backing array of
	// Samples (len 16×SamplesPerChannel, Samples[ch] aliases
	// block[ch·n:(ch+1)·n]) and every sample in it is within the 16-bit
	// wire range [0, 0xFFFF]. The serving path's word-at-a-time integration
	// and its packet-level dark screen rely on both properties. Unmarshal
	// and GenerateEvent maintain the invariant; code that reassigns a
	// Samples[ch] slice header (rather than mutating samples in place) must
	// leave block nil. It sits before Samples so the serving loop's hot
	// fields (header + block) share the packet's first cache line.
	block []int32
	// Samples is indexed [channel][sample]; every channel has
	// SamplesPerChannel samples.
	Samples [ChannelsPerASIC][]int32
}

// ASICIndex returns the packet's full digitizer index, combining the
// historical one-byte ASIC field with the Flags extension byte.
//
//hepccl:hotpath
func (h *Header) ASICIndex() int { return int(h.Flags)<<8 | int(h.ASIC) }

// MaxASICs is the largest digitizer count the two-byte wire index addresses.
const MaxASICs = 1 << 16

// headerBytes is the wire size of the header plus the trailing checksum.
const headerBytes = 2 + 1 + 1 + 4 + 8 + 1

// PacketHeaderBytes exports the frame header wire size for consumers that
// frame without decoding (the gateway's flush-boundary check: fewer buffered
// bytes than a header means no complete frame can be buffered either).
const PacketHeaderBytes = headerBytes

// ErrChecksumMismatch reports a frame whose trailing checksum does not match
// its contents. It is a shared sentinel (not formatted per failure) because a
// noisy link produces it at line rate and the stream reader only counts it.
var ErrChecksumMismatch = errors.New("adapt: checksum mismatch")

// WireSize returns the marshaled packet size in bytes.
func (p *Packet) WireSize() int {
	return headerBytes + 2*ChannelsPerASIC*int(p.SamplesPerChannel) + 2
}

// Marshal serializes the packet: big-endian header, then channel-major
// 16-bit samples, then a 16-bit additive checksum over everything before it.
func (p *Packet) Marshal() ([]byte, error) {
	for ch := 0; ch < ChannelsPerASIC; ch++ {
		if len(p.Samples[ch]) != int(p.SamplesPerChannel) {
			return nil, fmt.Errorf("adapt: channel %d has %d samples, header says %d",
				ch, len(p.Samples[ch]), p.SamplesPerChannel)
		}
		for s, v := range p.Samples[ch] {
			if v < 0 || v > 0xFFFF {
				return nil, fmt.Errorf("adapt: channel %d sample %d = %d outside 16-bit ADC range", ch, s, v)
			}
		}
	}
	buf := make([]byte, 0, p.WireSize())
	buf = binary.BigEndian.AppendUint16(buf, PacketMagic)
	buf = append(buf, p.ASIC, p.Flags)
	buf = binary.BigEndian.AppendUint32(buf, p.Event)
	buf = binary.BigEndian.AppendUint64(buf, p.Timestamp)
	buf = append(buf, p.SamplesPerChannel)
	for ch := 0; ch < ChannelsPerASIC; ch++ {
		for _, v := range p.Samples[ch] {
			buf = binary.BigEndian.AppendUint16(buf, uint16(v))
		}
	}
	buf = binary.BigEndian.AppendUint16(buf, checksum(buf))
	return buf, nil
}

// Unmarshal parses and validates one packet, returning the bytes consumed.
//
//hepccl:hotpath
func (p *Packet) Unmarshal(data []byte) (int, error) {
	//hepccl:coldpath
	if len(data) < headerBytes {
		return 0, fmt.Errorf("adapt: truncated header (%d bytes)", len(data))
	}
	//hepccl:coldpath
	if m := binary.BigEndian.Uint16(data); m != PacketMagic {
		return 0, fmt.Errorf("adapt: bad magic %#04x", m)
	}
	p.Magic = PacketMagic
	p.ASIC = data[2]
	p.Flags = data[3]
	p.Event = binary.BigEndian.Uint32(data[4:])
	p.Timestamp = binary.BigEndian.Uint64(data[8:])
	p.SamplesPerChannel = data[16]
	total := p.WireSize()
	//hepccl:coldpath
	if len(data) < total {
		return 0, fmt.Errorf("adapt: truncated packet: have %d bytes, want %d", len(data), total)
	}
	n := int(p.SamplesPerChannel)
	// Decode into the packet's contiguous backing block, reusing its storage
	// when capacity allows. Callers that reuse a Packet across Unmarshal
	// calls must not retain the previous sample slices. When the block and
	// the sample slices already have this geometry (the steady state for
	// pooled packets), the 16 slice headers are left untouched.
	need := ChannelsPerASIC * n
	blk := p.block
	if len(blk) != need {
		//hepccl:amortized
		if cap(blk) < need {
			blk = make([]int32, need)
		}
		blk = blk[:need]
		p.block = blk
	}
	if need == 0 || len(p.Samples[0]) != n || &p.Samples[0][0] != &blk[0] {
		// Carve the block by shrinking from the front. The len(rest) >= n
		// leg is vacuous (len(blk) == ChannelsPerASIC*n) but turns the
		// per-channel window into a provable reslice, where the ch*n
		// product form keeps a bounds check per iteration.
		rest := blk
		for ch := 0; ch < ChannelsPerASIC && len(rest) >= n; ch++ {
			p.Samples[ch] = rest[:n:n]
			rest = rest[n:]
		}
	}
	// Checksum verification fuses into the decode so the frame is walked
	// once. The 17-byte header leaves the checksum's 16-bit word grid
	// straddling the sample words by one byte, but the sum is additive over
	// weighted bytes: relative to the grid each sample's high byte lands in
	// a low (×1) slot and its low byte in a high (×256) slot — including the
	// final padded byte — so the sample region contributes the plain sum of
	// its byte-swapped words, which is exactly the 16-bit lanes of a
	// little-endian load.
	sum := 256 * uint64(data[16])
	// Two-word unroll over the 16 header bytes: constant indices under the
	// entry length check, where the strided loop form retains a bounds check
	// per load.
	hw := data[:16]
	v0 := binary.BigEndian.Uint64(hw[:8])
	sum += v0>>48 + v0>>32&0xFFFF + v0>>16&0xFFFF + v0&0xFFFF
	v1 := binary.BigEndian.Uint64(hw[8:16])
	sum += v1>>48 + v1>>32&0xFFFF + v1>>16&0xFFFF + v1&0xFFFF
	// The wire layout is channel-major, matching the block layout exactly:
	// one linear pass decodes every channel. Lane accumulators hold one
	// 16-bit word sum per 32-bit half; at most 1020 additions per frame
	// (255-sample cap), they cannot carry across lanes.
	// The slice-advance loop shape (instead of indexed stores) lets the
	// compiler prove every access in range and drop the per-store bounds
	// checks, which otherwise dominate this loop.
	src := data[headerBytes : headerBytes+2*need]
	dst := blk
	const lanes = 0x0000FFFF0000FFFF
	var accLo, accHi uint64
	for len(src) >= 8 && len(dst) >= 4 { // four samples per 8-byte load
		le := binary.LittleEndian.Uint64(src)
		accLo += le & lanes
		accHi += le >> 16 & lanes
		be := bits.ReverseBytes64(le)
		dst[0] = int32(be >> 48)
		dst[1] = int32(be >> 32 & 0xFFFF)
		dst[2] = int32(be >> 16 & 0xFFFF)
		dst[3] = int32(be & 0xFFFF)
		src, dst = src[8:], dst[4:]
	}
	for len(src) >= 2 && len(dst) >= 1 { // unreachable (need is a multiple of 16); kept for safety
		w := binary.BigEndian.Uint16(src)
		sum += uint64(w>>8) + uint64(w&0xFF)<<8
		dst[0] = int32(w)
		src, dst = src[2:], dst[1:]
	}
	sum += accLo&0xFFFFFFFF + accLo>>32 + accHi&0xFFFFFFFF + accHi>>32
	for sum > 0xFFFF {
		sum = sum&0xFFFF + sum>>16
	}
	if want := binary.BigEndian.Uint16(data[total-2:]); uint16(sum) != want {
		// Static error: this is the hot failure mode on a noisy link, and the
		// stream reader discards it after counting the bad frame. The block
		// holds the rejected frame's samples at this point; callers treat the
		// packet as scratch until Unmarshal succeeds.
		return 0, ErrChecksumMismatch
	}
	return total, nil
}

// PatchFrameEventID rewrites the event-id field of a marshaled frame in
// place and refolds the trailing checksum, so load generators can reuse one
// serialized event instead of re-marshaling per event id.
func PatchFrameEventID(frame []byte, event uint32) error {
	if len(frame) < headerBytes+2 {
		return fmt.Errorf("adapt: frame too short to patch (%d bytes)", len(frame))
	}
	binary.BigEndian.PutUint32(frame[4:], event)
	binary.BigEndian.PutUint16(frame[len(frame)-2:], checksum(frame[:len(frame)-2]))
	return nil
}

// checksum is a 16-bit additive checksum (ones'-complement style sum of
// 16-bit words, with a trailing odd byte zero-padded).
func checksum(data []byte) uint16 {
	sum := wordSum(data)
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return uint16(sum)
}

// wordSum is the unfolded word sum behind checksum. It is exposed separately
// so FramePatcher can do incremental updates in the same arithmetic: the sum
// is linear, so any caller that knows the old contribution of a field can
// subtract it and add the replacement without re-reading the buffer. The hot
// loop folds eight bytes per iteration; a uint64 accumulator cannot overflow
// below 2^48 input words.
func wordSum(data []byte) uint64 {
	var sum, sum2 uint64
	i := 0
	for ; i+16 <= len(data); i += 16 { // two independent accumulators
		v := binary.BigEndian.Uint64(data[i:])
		w := binary.BigEndian.Uint64(data[i+8:])
		sum += v>>48 + v>>32&0xFFFF + v>>16&0xFFFF + v&0xFFFF
		sum2 += w>>48 + w>>32&0xFFFF + w>>16&0xFFFF + w&0xFFFF
	}
	sum += sum2
	for ; i+8 <= len(data); i += 8 {
		v := binary.BigEndian.Uint64(data[i:])
		sum += v>>48 + v>>32&0xFFFF + v>>16&0xFFFF + v&0xFFFF
	}
	for ; i+1 < len(data); i += 2 {
		sum += uint64(binary.BigEndian.Uint16(data[i:]))
	}
	if len(data)%2 == 1 {
		sum += uint64(data[len(data)-1]) << 8
	}
	return sum
}

// FramePatcher caches a marshaled frame's checksum base — the word sum of
// everything except the event-id field — so repeated event-id rewrites cost a
// handful of adds instead of a full checksum refold over the frame. The
// event-id bytes sit at offsets 4..7, aligned to the checksum's 16-bit word
// grid, so their contribution is exactly the two halves of the id.
type FramePatcher struct {
	base uint64
}

// NewFramePatcher captures the patch base of a marshaled frame. The patcher
// stays valid as long as every byte of the frame outside the event-id and
// checksum fields is unchanged.
func NewFramePatcher(frame []byte) (FramePatcher, error) {
	if len(frame) < headerBytes+2 {
		return FramePatcher{}, fmt.Errorf("adapt: frame too short to patch (%d bytes)", len(frame))
	}
	sum := wordSum(frame[:len(frame)-2])
	sum -= uint64(binary.BigEndian.Uint16(frame[4:]))
	sum -= uint64(binary.BigEndian.Uint16(frame[6:]))
	return FramePatcher{base: sum}, nil
}

// SetEventID rewrites the frame's event id and trailing checksum in place.
// The result is bit-identical to PatchFrameEventID: the word sum is rebuilt
// from the cached base plus the new id's halves, then folded the same way.
func (fp FramePatcher) SetEventID(frame []byte, event uint32) {
	binary.BigEndian.PutUint32(frame[4:], event)
	sum := fp.base + uint64(event>>16) + uint64(event&0xFFFF)
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	binary.BigEndian.PutUint16(frame[len(frame)-2:], uint16(sum))
}

// Integrals sums each channel's waveform — the per-channel waveform
// integration stage.
func (p *Packet) Integrals() [ChannelsPerASIC]int64 {
	var out [ChannelsPerASIC]int64
	for ch := 0; ch < ChannelsPerASIC; ch++ {
		var s int64
		for _, v := range p.Samples[ch] {
			s += int64(v)
		}
		out[ch] = s
	}
	return out
}
