package adapt

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/design"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

func quietDigitizer() detector.DigitizerConfig {
	dig := detector.DefaultDigitizer()
	dig.NoiseRMS = 0
	return dig
}

func TestPacketRoundTrip(t *testing.T) {
	var p Packet
	p.Header = Header{Magic: PacketMagic, ASIC: 3, Flags: 1, Event: 1234, Timestamp: 99999, SamplesPerChannel: 4}
	for ch := 0; ch < ChannelsPerASIC; ch++ {
		p.Samples[ch] = []int32{int32(ch), int32(ch) + 1, 200, 4095}
	}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != p.WireSize() {
		t.Fatalf("wire size %d != %d", len(buf), p.WireSize())
	}
	var q Packet
	n, err := q.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if q.ASIC != 3 || q.Event != 1234 || q.Timestamp != 99999 || q.Flags != 1 {
		t.Fatalf("header mismatch: %+v", q.Header)
	}
	for ch := 0; ch < ChannelsPerASIC; ch++ {
		for s := range p.Samples[ch] {
			if q.Samples[ch][s] != p.Samples[ch][s] {
				t.Fatalf("sample mismatch at ch %d s %d", ch, s)
			}
		}
	}
}

func TestPacketMarshalErrors(t *testing.T) {
	var p Packet
	p.SamplesPerChannel = 2
	// Wrong sample count.
	if _, err := p.Marshal(); err == nil {
		t.Fatal("missing samples must error")
	}
	for ch := 0; ch < ChannelsPerASIC; ch++ {
		p.Samples[ch] = []int32{0, 70000} // out of ADC range
	}
	if _, err := p.Marshal(); err == nil {
		t.Fatal("out-of-range sample must error")
	}
}

func TestPacketUnmarshalErrors(t *testing.T) {
	var p Packet
	p.Header = Header{ASIC: 0, Event: 1, SamplesPerChannel: 2}
	for ch := 0; ch < ChannelsPerASIC; ch++ {
		p.Samples[ch] = []int32{1, 2}
	}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var q Packet
	if _, err := q.Unmarshal(buf[:5]); err == nil {
		t.Error("truncated header must error")
	}
	if _, err := q.Unmarshal(buf[:len(buf)-3]); err == nil {
		t.Error("truncated payload must error")
	}
	bad := append([]byte{}, buf...)
	bad[0] = 0x00 // break magic
	if _, err := q.Unmarshal(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic err = %v", err)
	}
	bad = append([]byte{}, buf...)
	bad[20] ^= 0xFF // corrupt a sample
	if _, err := q.Unmarshal(bad); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("checksum err = %v", err)
	}
}

// Property: marshal/unmarshal round-trips arbitrary sample data.
func TestPacketRoundTripProperty(t *testing.T) {
	f := func(samples [ChannelsPerASIC][3]uint16, asic uint8, event uint32) bool {
		var p Packet
		p.Header = Header{ASIC: asic, Event: event, SamplesPerChannel: 3}
		for ch := 0; ch < ChannelsPerASIC; ch++ {
			p.Samples[ch] = []int32{int32(samples[ch][0]), int32(samples[ch][1]), int32(samples[ch][2])}
		}
		buf, err := p.Marshal()
		if err != nil {
			return false
		}
		var q Packet
		if _, err := q.Unmarshal(buf); err != nil {
			return false
		}
		if q.ASIC != asic || q.Event != event {
			return false
		}
		for ch := 0; ch < ChannelsPerASIC; ch++ {
			for s := 0; s < 3; s++ {
				if q.Samples[ch][s] != p.Samples[ch][s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStageFunctions(t *testing.T) {
	if PedestalSubtract(3200, 3200) != 0 || PedestalSubtract(3100, 3200) != 0 {
		t.Error("pedestal subtraction must clamp at zero")
	}
	if PedestalSubtract(3280, 3200) != 80 {
		t.Error("pedestal subtraction wrong")
	}
	if PhotonCount(80, 40) != 2 || PhotonCount(99, 40) != 2 || PhotonCount(100, 40) != 3 {
		t.Error("photon counting must round to nearest")
	}
	if PhotonCount(80, 0) != 0 {
		t.Error("non-positive gain must yield zero")
	}
	if ZeroSuppress(2, 2) != 0 || ZeroSuppress(3, 2) != 3 {
		t.Error("zero suppression wrong")
	}
}

func TestMerger(t *testing.T) {
	m, err := NewMerger(2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Channels() != 32 {
		t.Fatalf("channels = %d, want 32", m.Channels())
	}
	blocks := map[uint8][ChannelsPerASIC]grid.Value{}
	var b0, b1 [ChannelsPerASIC]grid.Value
	b0[0] = 5
	b1[15] = 9
	blocks[0], blocks[1] = b0, b1
	out, err := m.Merge(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 5 || out[31] != 9 {
		t.Fatal("merge placement wrong")
	}
	// Missing / extra blocks error.
	if _, err := m.Merge(map[uint8][ChannelsPerASIC]grid.Value{0: b0}); err == nil {
		t.Error("short merge must error")
	}
	if _, err := m.Merge(map[uint8][ChannelsPerASIC]grid.Value{0: b0, 2: b1}); err == nil {
		t.Error("wrong ASIC id must error")
	}
	if _, err := NewMerger(0); err == nil {
		t.Error("zero ASICs must error")
	}
}

func TestNewPipelineValidation(t *testing.T) {
	bad := []Config{
		{},
		{ASICs: 1, SamplesPerChannel: 0, GainADC: 40},
		{ASICs: 1, SamplesPerChannel: 16, GainADC: 0},
		{ASICs: 1, SamplesPerChannel: 16, GainADC: 40,
			Detection: design.TopConfig{
				TwoDimension: true,
				TwoD:         design.Config{Rows: 8, Cols: 10, Connectivity: grid.FourWay},
			}}, // 80 px > 16 channels
		{ASICs: 1, SamplesPerChannel: 16, GainADC: 40,
			Detection: design.TopConfig{TwoDimension: true}}, // zero dims
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d must error", i)
		}
	}
}

func TestEndToEnd1DExactRecovery(t *testing.T) {
	cfg := DefaultADAPT()
	cfg.ASICs = 4 // 64 channels, keep it small
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]grid.Value, p.Channels())
	truth[5], truth[6], truth[7] = 10, 25, 8
	truth[40] = 12
	truth[63] = 5
	truth[20] = 1 // below threshold: must vanish
	packets, err := GenerateEvent(truth, cfg.ASICs, 7, 1000, quietDigitizer(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ProcessEvent(packets)
	if err != nil {
		t.Fatal(err)
	}
	for ch, want := range truth {
		want = ZeroSuppress(want, cfg.ThresholdPE)
		if res.Values[ch] != want {
			t.Fatalf("channel %d recovered %d, want %d", ch, res.Values[ch], want)
		}
	}
	if res.OneD == nil || res.TwoD != nil {
		t.Fatal("1D mode must produce 1D output")
	}
	if len(res.OneD.Islands) != 3 {
		t.Fatalf("1D islands = %d, want 3", len(res.OneD.Islands))
	}
	first := res.OneD.Islands[0]
	if first.Start != 5 || first.End != 7 || first.Sum != 43 {
		t.Fatalf("island 0 = %+v", first)
	}
}

func TestEndToEnd2DCTAShower(t *testing.T) {
	cfg := DefaultCTA()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cam := detector.LSTCamera()
	cam.CleaningThresholdPE = 0 // pipeline applies its own suppression
	rng := detector.NewRNG(5150)
	img := cam.Shower(detector.ShowerConfig{
		CenterRow: 20, CenterCol: 24, Length: 4, Width: 1.5, AngleRad: 0.7, TotalPE: 400,
	}, rng)

	flat := make([]grid.Value, p.Channels())
	copy(flat, img.Flat())
	packets, err := GenerateEvent(flat, cfg.ASICs, 1, 2000, quietDigitizer(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ProcessEvent(packets)
	if err != nil {
		t.Fatal(err)
	}
	if res.TwoD == nil || res.OneD != nil {
		t.Fatal("2D mode must produce 2D output")
	}
	// The pipeline's labeling must match direct CCL on the zero-suppressed
	// truth image.
	want, err := ccl.Label(img.Threshold(cfg.ThresholdPE+1), ccl.Options{
		Connectivity: grid.FourWay, Mode: ccl.ModePaper,
		MergeTableCap: ccl.SizeFor(43, 43, grid.FourWay),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TwoD.Labels.Isomorphic(want.Labels) {
		t.Fatal("pipeline labeling differs from direct CCL on the truth image")
	}
	if len(res.Islands) == 0 || len(res.Centroids) != len(res.Islands) {
		t.Fatalf("islands/centroids = %d/%d", len(res.Islands), len(res.Centroids))
	}
	// The dominant island's centroid should be near the configured center.
	main := res.Centroids[0]
	for _, c := range res.Centroids {
		if c.Sum > main.Sum {
			main = c
		}
	}
	if dr, dc := main.Row-20, main.Col-24; dr*dr+dc*dc > 16 {
		t.Fatalf("main centroid (%.1f,%.1f) far from (20,24)", main.Row, main.Col)
	}
}

func TestProcessEventValidation(t *testing.T) {
	cfg := DefaultADAPT()
	cfg.ASICs = 2
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	good, err := GenerateEvent(nil, 2, 9, 0, quietDigitizer(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ProcessEvent(good[:1]); err == nil {
		t.Error("missing packet must error")
	}
	dup := []Packet{good[0], good[0]}
	if _, err := p.ProcessEvent(dup); err == nil {
		t.Error("duplicate ASIC must error")
	}
	bad := []Packet{good[0], good[1]}
	bad[1].Event = 10
	if _, err := p.ProcessEvent(bad); err == nil {
		t.Error("event id mismatch must error")
	}
	bad = []Packet{good[0], good[1]}
	bad[1].ASIC = 5
	if _, err := p.ProcessEvent(bad); err == nil {
		t.Error("unknown ASIC must error")
	}
}

func TestCalibration(t *testing.T) {
	cfg := DefaultADAPT()
	cfg.ASICs = 2
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A digitizer whose true pedestal differs from the nominal config.
	dig := quietDigitizer()
	dig.Pedestal = 231
	rng := detector.NewRNG(31)
	events, err := GeneratePedestalEvents(50, cfg.ASICs, dig, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Calibrate(events); err != nil {
		t.Fatal(err)
	}
	want := int64(231 * dig.Samples)
	for ch := 0; ch < p.Channels(); ch++ {
		got := p.Pedestal(ch)
		if got < want-2 || got > want+2 {
			t.Fatalf("channel %d pedestal = %d, want ≈%d", ch, got, want)
		}
	}
	// After calibration a modest signal is recovered despite the offset.
	truth := make([]grid.Value, p.Channels())
	truth[3] = 15
	packets, err := GenerateEvent(truth, cfg.ASICs, 1, 0, dig, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ProcessEvent(packets)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[3] < 14 || res.Values[3] > 16 {
		t.Fatalf("recovered %d, want ≈15", res.Values[3])
	}
	if err := p.Calibrate(nil); err == nil {
		t.Error("empty calibration must error")
	}
}

func TestThroughputADAPT(t *testing.T) {
	p, err := New(DefaultADAPT())
	if err != nil {
		t.Fatal(err)
	}
	eps := p.EventsPerSecond()
	// §2: "it can process 300k events per second".
	if eps < 280e3 || eps > 320e3 {
		t.Fatalf("ADAPT pipeline = %.0f events/s, want ≈300k", eps)
	}
	if p.Bottleneck() != "island" {
		t.Fatalf("bottleneck = %q, want island", p.Bottleneck())
	}
	if len(p.StageIntervals()) != 6 {
		t.Fatal("expected six pipeline stages")
	}
}

func TestThroughputCTA(t *testing.T) {
	p, err := New(DefaultCTA())
	if err != nil {
		t.Fatal(err)
	}
	eps := p.EventsPerSecond()
	// §5.5: the 43×43 4-way design achieves the 15 kHz CTA target.
	if eps < 15000 || eps > 16000 {
		t.Fatalf("CTA pipeline = %.0f events/s, want ≈15.2k", eps)
	}
}

func TestEventRecordRoundTrip(t *testing.T) {
	rec := EventRecord{Event: 77, Islands: []IslandRecord{
		{Label: 1, Pixels: 4, Sum: 123, RowQ16: ToQ16(2.5), ColQ16: ToQ16(7.25)},
		{Label: 2, Pixels: 1, Sum: 9, RowQ16: ToQ16(0), ColQ16: ToQ16(42.0)},
	}}
	buf := rec.Marshal()
	got, err := UnmarshalEventRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Event != 77 || len(got.Islands) != 2 {
		t.Fatalf("record = %+v", got)
	}
	if got.Islands[0].Row() != 2.5 || got.Islands[0].Col() != 7.25 {
		t.Fatalf("fixed point round trip: %+v", got.Islands[0])
	}
	if _, err := UnmarshalEventRecord(buf[:6]); err == nil {
		t.Error("truncated record must error")
	}
	if _, err := UnmarshalEventRecord(buf[:10]); err == nil {
		t.Error("short payload must error")
	}
}

func TestRecordOfBothModes(t *testing.T) {
	cfg := DefaultADAPT()
	cfg.ASICs = 2
	p, _ := New(cfg)
	truth := make([]grid.Value, p.Channels())
	truth[4], truth[5] = 10, 10
	packets, _ := GenerateEvent(truth, cfg.ASICs, 3, 0, quietDigitizer(), nil)
	res, err := p.ProcessEvent(packets)
	if err != nil {
		t.Fatal(err)
	}
	rec := RecordOf(res)
	if rec.Event != 3 || len(rec.Islands) != 1 {
		t.Fatalf("1D record = %+v", rec)
	}
	// centroid of equal 10,10 at channels 4,5 = 4.5.
	if got := rec.Islands[0].Col(); got != 4.5 {
		t.Fatalf("1D centroid = %v, want 4.5", got)
	}

	// 2D mode.
	cfg2 := DefaultCTA()
	cfg2.Detection.TwoD.Rows, cfg2.Detection.TwoD.Cols = 8, 10
	cfg2.ASICs = 5
	p2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	truth2 := make([]grid.Value, p2.Channels())
	truth2[0], truth2[1] = 10, 10
	packets2, _ := GenerateEvent(truth2, cfg2.ASICs, 4, 0, quietDigitizer(), nil)
	res2, err := p2.ProcessEvent(packets2)
	if err != nil {
		t.Fatal(err)
	}
	rec2 := RecordOf(res2)
	if len(rec2.Islands) != 1 || rec2.Islands[0].Pixels != 2 {
		t.Fatalf("2D record = %+v", rec2)
	}
	if rec2.Islands[0].Row() != 0 || rec2.Islands[0].Col() != 0.5 {
		t.Fatalf("2D centroid = (%v,%v), want (0,0.5)",
			rec2.Islands[0].Row(), rec2.Islands[0].Col())
	}
}

func TestToQ16Saturation(t *testing.T) {
	if ToQ16(1e9) != 1<<31-1 {
		t.Error("positive saturation")
	}
	if ToQ16(-1e9) != -(1 << 31) {
		t.Error("negative saturation")
	}
	if ToQ16(1.5) != 98304 {
		t.Error("1.5 in Q16.16 = 98304")
	}
}

func TestGenerateEventErrors(t *testing.T) {
	dig := quietDigitizer()
	if _, err := GenerateEvent(nil, 0, 0, 0, dig, nil); err == nil {
		t.Error("zero ASICs must error")
	}
	if _, err := GenerateEvent(make([]grid.Value, 33), 2, 0, 0, dig, nil); err == nil {
		t.Error("too many channels must error")
	}
	dig.Samples = 0
	if _, err := GenerateEvent(nil, 1, 0, 0, dig, nil); err == nil {
		t.Error("bad window must error")
	}
}

func TestHardwareCentroidsMatchSoftware(t *testing.T) {
	cfg := DefaultCTA()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cam := detector.LSTCamera()
	cam.CleaningThresholdPE = 0
	rng := detector.NewRNG(616)
	img := cam.Shower(cam.TypicalShower(rng), rng)
	flat := make([]grid.Value, p.Channels())
	copy(flat, img.Flat())
	packets, err := GenerateEvent(flat, cfg.ASICs, 1, 0, quietDigitizer(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ProcessEvent(packets)
	if err != nil {
		t.Fatal(err)
	}
	if res.HardwareCentroids == nil {
		t.Fatal("2D mode must produce hardware centroids")
	}
	hw := res.HardwareCentroids.Centroids
	if len(hw) != len(res.Centroids) {
		t.Fatalf("hw %d vs sw %d centroids", len(hw), len(res.Centroids))
	}
	for i, sw := range res.Centroids {
		if hw[i].Label != sw.Label || hw[i].Sum != sw.Sum {
			t.Fatalf("centroid %d identity mismatch", i)
		}
		if d := hw[i].Row() - sw.Row; d > 1e-4 || d < -1e-4 {
			t.Fatalf("centroid %d row: hw %v vs sw %v", i, hw[i].Row(), sw.Row)
		}
		if d := hw[i].Col() - sw.Col; d > 1e-4 || d < -1e-4 {
			t.Fatalf("centroid %d col: hw %v vs sw %v", i, hw[i].Col(), sw.Col)
		}
	}
	// The downlink record carries the hardware values verbatim.
	rec := RecordOf(res)
	if len(rec.Islands) != len(hw) {
		t.Fatal("record count mismatch")
	}
	for i := range hw {
		if rec.Islands[i].RowQ16 != hw[i].RowQ16 || rec.Islands[i].ColQ16 != hw[i].ColQ16 {
			t.Fatalf("record %d not from hardware centroids", i)
		}
	}
	// And the centroid stage never bottlenecks the dataflow.
	if res.HardwareCentroids.Report.LatencyCycles >= res.TwoD.Report.LatencyCycles {
		t.Fatal("centroid stage should be cheaper than labeling")
	}
}
