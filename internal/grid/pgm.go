package grid

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// PGM (portable graymap) I/O, so real camera bitmaps can flow through the
// pipeline tools. Both the plain (P2) and raw (P5) variants are supported
// for reading; writing emits plain P2 for diff-friendliness. Gray values map
// directly to pixel intensities (0 = dark).

// ReadPGM parses a PGM image into a grid.
func ReadPGM(r io.Reader) (*Grid, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, fmt.Errorf("grid: pgm: %w", err)
	}
	if magic != "P2" && magic != "P5" {
		return nil, fmt.Errorf("grid: pgm: unsupported magic %q", magic)
	}
	dims := [3]int{}
	for i := range dims {
		tok, err := pgmToken(br)
		if err != nil {
			return nil, fmt.Errorf("grid: pgm header: %w", err)
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("grid: pgm header field %q: %w", tok, err)
		}
		dims[i] = v
	}
	width, height, maxVal := dims[0], dims[1], dims[2]
	if width < 1 || height < 1 {
		return nil, fmt.Errorf("grid: pgm: invalid size %dx%d", width, height)
	}
	if maxVal < 1 || maxVal > 65535 {
		return nil, fmt.Errorf("grid: pgm: invalid maxval %d", maxVal)
	}
	g := New(height, width)
	n := width * height
	if magic == "P2" {
		for i := 0; i < n; i++ {
			tok, err := pgmToken(br)
			if err != nil {
				return nil, fmt.Errorf("grid: pgm pixel %d: %w", i, err)
			}
			v, err := strconv.Atoi(tok)
			if err != nil || v < 0 || v > maxVal {
				return nil, fmt.Errorf("grid: pgm pixel %d: bad value %q", i, tok)
			}
			g.data[i] = Value(v)
		}
		return g, nil
	}
	// P5: binary samples, 1 byte if maxVal < 256, else 2 bytes big-endian.
	bytesPer := 1
	if maxVal > 255 {
		bytesPer = 2
	}
	buf := make([]byte, n*bytesPer)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("grid: pgm raster: %w", err)
	}
	for i := 0; i < n; i++ {
		var v int
		if bytesPer == 1 {
			v = int(buf[i])
		} else {
			v = int(buf[2*i])<<8 | int(buf[2*i+1])
		}
		if v > maxVal {
			return nil, fmt.Errorf("grid: pgm pixel %d: value %d exceeds maxval %d", i, v, maxVal)
		}
		g.data[i] = Value(v)
	}
	return g, nil
}

// pgmToken returns the next whitespace-delimited token, skipping '#'
// comments per the netpbm spec.
func pgmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if len(tok) > 0 && err == io.EOF {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case b == '#' && len(tok) == 0:
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

// WritePGM emits the grid as a plain (P2) PGM. Values are clamped at 0 and
// the written maxval is the grid's maximum (at least 1).
func (g *Grid) WritePGM(w io.Writer) error {
	maxVal := Value(1)
	for _, v := range g.data {
		if v > maxVal {
			maxVal = v
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P2\n# hepccl island image\n%d %d\n%d\n", g.cols, g.rows, maxVal)
	for r := 0; r < g.rows; r++ {
		for c := 0; c < g.cols; c++ {
			v := g.data[r*g.cols+c]
			if v < 0 {
				v = 0
			}
			if c > 0 {
				bw.WriteByte(' ')
			}
			fmt.Fprintf(bw, "%d", v)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
