package grid

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestPGMPlainRoundTrip(t *testing.T) {
	g, _ := FromRows([][]Value{{0, 3, 9}, {1, 0, 255}})
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatalf("round trip changed image:\n%v\nvs\n%v", g.Flat(), back.Flat())
	}
}

func TestPGMPlainWithComments(t *testing.T) {
	src := "P2\n# a comment\n3 2\n# another\n10\n0 1 2\n3 4 5\n"
	g, err := ReadPGM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows() != 2 || g.Cols() != 3 || g.At(1, 2) != 5 {
		t.Fatalf("parsed wrong: %v", g.Flat())
	}
}

func TestPGMRaw8And16(t *testing.T) {
	// P5, 2x2, maxval 255, one byte per sample.
	raw8 := append([]byte("P5\n2 2\n255\n"), 0, 7, 200, 255)
	g, err := ReadPGM(bytes.NewReader(raw8))
	if err != nil {
		t.Fatal(err)
	}
	if g.At(0, 1) != 7 || g.At(1, 1) != 255 {
		t.Fatalf("raw8 wrong: %v", g.Flat())
	}
	// P5 16-bit big-endian.
	raw16 := append([]byte("P5\n1 2\n1000\n"), 0x03, 0xE8, 0x00, 0x2A)
	g, err = ReadPGM(bytes.NewReader(raw16))
	if err != nil {
		t.Fatal(err)
	}
	if g.At(0, 0) != 1000 || g.At(1, 0) != 42 {
		t.Fatalf("raw16 wrong: %v", g.Flat())
	}
}

func TestPGMErrors(t *testing.T) {
	cases := []string{
		"",                      // empty
		"P6\n2 2\n255\n",        // wrong magic
		"P2\n0 2\n255\n",        // zero width
		"P2\n2 2\n0\n0 0 0 0",   // bad maxval
		"P2\n2 2\n255\n1 2 3",   // short raster
		"P2\n2 2\n255\n1 2 x 4", // junk pixel
		"P2\n2 2\n9\n1 2 3 10",  // pixel above maxval
		"P5\n2 2\n255\nAB",      // short binary raster
		"P2\nx 2\n255\n",        // non-numeric header
	}
	for _, src := range cases {
		if _, err := ReadPGM(strings.NewReader(src)); err == nil {
			t.Errorf("ReadPGM(%q): want error", src)
		}
	}
}

// Property: WritePGM/ReadPGM round-trips arbitrary non-negative images.
func TestPGMRoundTripProperty(t *testing.T) {
	f := func(cells [24]uint16, w uint8) bool {
		cols := int(w)%6 + 1
		rows := len(cells) / cols
		if rows < 1 {
			return true
		}
		g := New(rows, cols)
		for i := 0; i < rows*cols; i++ {
			g.Flat()[i] = Value(cells[i])
		}
		var buf bytes.Buffer
		if err := g.WritePGM(&buf); err != nil {
			return false
		}
		back, err := ReadPGM(&buf)
		if err != nil {
			return false
		}
		return back.Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
