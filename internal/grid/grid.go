// Package grid provides the 2D pixel-array representation shared by every
// stage of the island-detection pipeline.
//
// Following §4.1 of the paper, a grid is stored as a flat, row-major slice of
// channel values; the address of pixel (row, col) is row*Cols + col. Rows and
// Cols are runtime parameters here (the HLS implementation fixes them with
// preprocessor macros at compile time, which a library cannot), but every
// algorithm treats them as immutable for the lifetime of a grid.
package grid

import (
	"fmt"
	"strings"
)

// Value is the integrated waveform value of one pixel (one SiPM/PMT channel
// after pedestal subtraction and integration). The HLS design uses int32
// channel values; we match it.
type Value = int32

// Grid is a dense 2D array of pixel values in row-major order.
//
// The zero Grid is empty and unusable; construct with New or FromRows.
type Grid struct {
	rows, cols int
	data       []Value
}

// New returns a zeroed grid with the given dimensions.
// It panics if either dimension is not positive, mirroring the compile-time
// constraint NROWS, NCOLS >= 1 of the HLS design.
func New(rows, cols int) *Grid {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%d", rows, cols))
	}
	return &Grid{rows: rows, cols: cols, data: make([]Value, rows*cols)}
}

// FromRows builds a grid from a slice of equal-length rows.
func FromRows(rows [][]Value) (*Grid, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("grid: FromRows requires a non-empty rectangle")
	}
	g := New(len(rows), len(rows[0]))
	for r, rowVals := range rows {
		if len(rowVals) != g.cols {
			return nil, fmt.Errorf("grid: row %d has %d values, want %d", r, len(rowVals), g.cols)
		}
		copy(g.data[r*g.cols:(r+1)*g.cols], rowVals)
	}
	return g, nil
}

// FromFlat wraps an existing row-major slice. The slice is used directly (not
// copied), matching the zero-copy hand-off from the Merge module's wide FIFO.
func FromFlat(rows, cols int, data []Value) (*Grid, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("grid: invalid dimensions %dx%d", rows, cols)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("grid: flat data has %d values, want %d", len(data), rows*cols)
	}
	return &Grid{rows: rows, cols: cols, data: data}, nil
}

// Rows returns the number of rows (NROWS).
func (g *Grid) Rows() int { return g.rows }

// Cols returns the number of columns (NCOLS).
func (g *Grid) Cols() int { return g.cols }

// Pixels returns the total pixel count NROWS*NCOLS.
func (g *Grid) Pixels() int { return g.rows * g.cols }

// Index converts (row, col) to the flat address row*Cols+col (§4.1).
func (g *Grid) Index(row, col int) int { return row*g.cols + col }

// In reports whether (row, col) lies inside the grid.
func (g *Grid) In(row, col int) bool {
	return row >= 0 && row < g.rows && col >= 0 && col < g.cols
}

// At returns the value at (row, col). It panics on out-of-range access: the
// hardware design cannot read outside its fixed-size array either.
func (g *Grid) At(row, col int) Value {
	if !g.In(row, col) {
		panic(fmt.Sprintf("grid: At(%d,%d) out of range for %dx%d", row, col, g.rows, g.cols))
	}
	return g.data[row*g.cols+col]
}

// Set stores v at (row, col).
func (g *Grid) Set(row, col int, v Value) {
	if !g.In(row, col) {
		panic(fmt.Sprintf("grid: Set(%d,%d) out of range for %dx%d", row, col, g.rows, g.cols))
	}
	g.data[row*g.cols+col] = v
}

// AtFlat returns the value at flat address i.
func (g *Grid) AtFlat(i int) Value { return g.data[i] }

// Flat returns the underlying row-major storage. Mutating it mutates the grid.
func (g *Grid) Flat() []Value { return g.data }

// Lit reports whether the pixel at (row, col) is above zero — i.e. survived
// zero-suppression upstream. Islands are maximal connected sets of lit pixels.
func (g *Grid) Lit(row, col int) bool { return g.At(row, col) != 0 }

// LitFlat reports whether the pixel at flat address i is lit.
func (g *Grid) LitFlat(i int) bool { return g.data[i] != 0 }

// LitCount returns the number of lit pixels.
func (g *Grid) LitCount() int {
	n := 0
	for _, v := range g.data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Occupancy returns the lit fraction in [0,1].
func (g *Grid) Occupancy() float64 {
	return float64(g.LitCount()) / float64(g.Pixels())
}

// Clone returns a deep copy.
func (g *Grid) Clone() *Grid {
	c := New(g.rows, g.cols)
	copy(c.data, g.data)
	return c
}

// Equal reports whether g and o have identical dimensions and values.
func (g *Grid) Equal(o *Grid) bool {
	if g.rows != o.rows || g.cols != o.cols {
		return false
	}
	for i, v := range g.data {
		if o.data[i] != v {
			return false
		}
	}
	return true
}

// Threshold returns a copy of g with every value < thr forced to zero.
// This is the zero-suppression semantic applied image-wide.
func (g *Grid) Threshold(thr Value) *Grid {
	c := g.Clone()
	for i, v := range c.data {
		if v < thr {
			c.data[i] = 0
		}
	}
	return c
}

// String renders the grid as ASCII art: '.' for dark pixels and '#' for lit
// ones, one text row per pixel row. Useful in tests and examples.
func (g *Grid) String() string {
	var b strings.Builder
	b.Grow((g.cols + 1) * g.rows)
	for r := 0; r < g.rows; r++ {
		for c := 0; c < g.cols; c++ {
			if g.data[r*g.cols+c] != 0 {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		if r != g.rows-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Parse builds a binary grid from ASCII art. Lines are rows; '.', ' ' and '0'
// are dark; every other non-space rune is a lit pixel with value 1. Blank
// lines and leading/trailing whitespace-only lines are ignored, so tests can
// use indented raw string literals.
func Parse(art string) (*Grid, error) {
	var rows [][]Value
	width := -1
	for _, line := range strings.Split(art, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		vals := make([]Value, 0, len(line))
		for _, ch := range line {
			switch ch {
			case '.', '0':
				vals = append(vals, 0)
			default:
				vals = append(vals, 1)
			}
		}
		if width == -1 {
			width = len(vals)
		} else if len(vals) != width {
			return nil, fmt.Errorf("grid: ragged art: row width %d, want %d", len(vals), width)
		}
		rows = append(rows, vals)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("grid: empty art")
	}
	return FromRows(rows)
}

// MustParse is Parse that panics on error, for test fixtures.
func MustParse(art string) *Grid {
	g, err := Parse(art)
	if err != nil {
		panic(err)
	}
	return g
}
