package grid

import "fmt"

// Connectivity selects 4-way or 8-way adjacency for connected-component
// labeling (Fig 4). In 4-way CCL pixels must share an edge; in 8-way CCL
// corner adjacency also connects.
type Connectivity int

const (
	// FourWay connects pixels across edges only (top, right, bottom, left).
	FourWay Connectivity = 4
	// EightWay also connects pixels across corners.
	EightWay Connectivity = 8
)

// String implements fmt.Stringer ("4-way" / "8-way", as in the paper's tables).
func (c Connectivity) String() string {
	switch c {
	case FourWay:
		return "4-way"
	case EightWay:
		return "8-way"
	default:
		return fmt.Sprintf("Connectivity(%d)", int(c))
	}
}

// Valid reports whether c is FourWay or EightWay.
func (c Connectivity) Valid() bool { return c == FourWay || c == EightWay }

// Offset is a relative (row, col) displacement to a neighbor.
type Offset struct{ DR, DC int }

var (
	fourAll  = []Offset{{-1, 0}, {0, -1}, {0, 1}, {1, 0}}
	eightAll = []Offset{{-1, -1}, {-1, 0}, {-1, 1}, {0, -1}, {0, 1}, {1, -1}, {1, 0}, {1, 1}}

	// Scanned neighbors: those already visited by a row-major raster scan.
	// 4-way CCL checks top and left; 8-way also checks top-left and top-right
	// (§4.2, §5.1). Order matters only for deterministic iteration.
	fourScan  = []Offset{{-1, 0}, {0, -1}}
	eightScan = []Offset{{-1, -1}, {-1, 0}, {-1, 1}, {0, -1}}
)

// Neighbors returns all adjacency offsets for c (4 or 8 entries).
// The returned slice is shared; callers must not mutate it.
func (c Connectivity) Neighbors() []Offset {
	if c == EightWay {
		return eightAll
	}
	return fourAll
}

// ScanNeighbors returns the offsets of neighbors already processed by a
// row-major raster scan — the ones a provisional-labeling pass may consult.
// The returned slice is shared; callers must not mutate it.
func (c Connectivity) ScanNeighbors() []Offset {
	if c == EightWay {
		return eightScan
	}
	return fourScan
}
