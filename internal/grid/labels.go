package grid

import (
	"fmt"
	"sort"
	"strings"
)

// Label identifies a connected component. Labels are positive; 0 means
// background (dark pixel). The HLS design stores labels in the same 32-bit
// channel slots as pixel data, so int32 matches the hardware width.
type Label = int32

// Labels is a per-pixel label assignment over a grid of the same shape.
type Labels struct {
	rows, cols int
	lab        []Label
}

// NewLabels returns an all-background label map for a rows×cols grid.
func NewLabels(rows, cols int) *Labels {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("grid: invalid label dimensions %dx%d", rows, cols))
	}
	return &Labels{rows: rows, cols: cols, lab: make([]Label, rows*cols)}
}

// Rows returns the number of rows.
func (l *Labels) Rows() int { return l.rows }

// Cols returns the number of columns.
func (l *Labels) Cols() int { return l.cols }

// Pixels returns rows*cols.
func (l *Labels) Pixels() int { return l.rows * l.cols }

// At returns the label at (row, col).
func (l *Labels) At(row, col int) Label {
	if row < 0 || row >= l.rows || col < 0 || col >= l.cols {
		panic(fmt.Sprintf("grid: label At(%d,%d) out of range for %dx%d", row, col, l.rows, l.cols))
	}
	return l.lab[row*l.cols+col]
}

// Set stores label v at (row, col).
func (l *Labels) Set(row, col int, v Label) {
	if row < 0 || row >= l.rows || col < 0 || col >= l.cols {
		panic(fmt.Sprintf("grid: label Set(%d,%d) out of range for %dx%d", row, col, l.rows, l.cols))
	}
	l.lab[row*l.cols+col] = v
}

// AtFlat returns the label at flat address i.
func (l *Labels) AtFlat(i int) Label { return l.lab[i] }

// SetFlat stores label v at flat address i.
func (l *Labels) SetFlat(i int, v Label) { l.lab[i] = v }

// Flat returns the underlying row-major label storage.
func (l *Labels) Flat() []Label { return l.lab }

// Clone returns a deep copy.
func (l *Labels) Clone() *Labels {
	c := NewLabels(l.rows, l.cols)
	copy(c.lab, l.lab)
	return c
}

// Count returns the number of distinct non-background labels present.
func (l *Labels) Count() int {
	seen := make(map[Label]struct{})
	for _, v := range l.lab {
		if v != 0 {
			seen[v] = struct{}{}
		}
	}
	return len(seen)
}

// Distinct returns the sorted set of non-background labels present.
func (l *Labels) Distinct() []Label {
	seen := make(map[Label]struct{})
	for _, v := range l.lab {
		if v != 0 {
			seen[v] = struct{}{}
		}
	}
	out := make([]Label, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports exact per-pixel equality (same label numbers).
// Most comparisons between labeling algorithms should use Isomorphic instead,
// since label numbering is algorithm-specific.
func (l *Labels) Equal(o *Labels) bool {
	if l.rows != o.rows || l.cols != o.cols {
		return false
	}
	for i, v := range l.lab {
		if o.lab[i] != v {
			return false
		}
	}
	return true
}

// Isomorphic reports whether l and o induce the same partition of pixels into
// components: there must be a bijection between their label sets such that
// relabeled l equals o, and background must coincide. This is the correctness
// relation used to compare labelers — "colors and numbers reflect the final
// label assigned" (Fig 4) but the numbers themselves are arbitrary.
func (l *Labels) Isomorphic(o *Labels) bool {
	if l.rows != o.rows || l.cols != o.cols {
		return false
	}
	fwd := make(map[Label]Label)
	bwd := make(map[Label]Label)
	for i, a := range l.lab {
		b := o.lab[i]
		if (a == 0) != (b == 0) {
			return false
		}
		if a == 0 {
			continue
		}
		if m, ok := fwd[a]; ok {
			if m != b {
				return false
			}
		} else {
			fwd[a] = b
		}
		if m, ok := bwd[b]; ok {
			if m != a {
				return false
			}
		} else {
			bwd[b] = a
		}
	}
	return true
}

// Compact renumbers labels to 1..K in first-appearance (raster) order and
// returns the number of components K. The paper's resolved merge table
// produces "compact, final island IDs" the same way.
func (l *Labels) Compact() int {
	next := Label(1)
	remap := make(map[Label]Label)
	for i, v := range l.lab {
		if v == 0 {
			continue
		}
		m, ok := remap[v]
		if !ok {
			m = next
			remap[v] = m
			next++
		}
		l.lab[i] = m
	}
	return int(next - 1)
}

// String renders the label map: '.' for background, '1'-'9' then 'a'-'z' then
// 'A'-'Z' for labels 1..61, '*' beyond. Intended for tests and examples.
func (l *Labels) String() string {
	var b strings.Builder
	b.Grow((l.cols + 1) * l.rows)
	for r := 0; r < l.rows; r++ {
		for c := 0; c < l.cols; c++ {
			b.WriteByte(labelGlyph(l.lab[r*l.cols+c]))
		}
		if r != l.rows-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func labelGlyph(v Label) byte {
	switch {
	case v == 0:
		return '.'
	case v <= 9:
		return byte('0' + v)
	case v <= 35:
		return byte('a' + v - 10)
	case v <= 61:
		return byte('A' + v - 36)
	default:
		return '*'
	}
}

// ParseLabels is the inverse of String for test fixtures: '.' is background,
// '1'-'9', 'a'-'z', 'A'-'Z' map back to labels 1..61.
func ParseLabels(art string) (*Labels, error) {
	var rows [][]Label
	width := -1
	for _, line := range strings.Split(art, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		vals := make([]Label, 0, len(line))
		for _, ch := range line {
			v, err := glyphLabel(ch)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		if width == -1 {
			width = len(vals)
		} else if len(vals) != width {
			return nil, fmt.Errorf("grid: ragged label art: row width %d, want %d", len(vals), width)
		}
		rows = append(rows, vals)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("grid: empty label art")
	}
	l := NewLabels(len(rows), width)
	for r, rowVals := range rows {
		copy(l.lab[r*width:(r+1)*width], rowVals)
	}
	return l, nil
}

func glyphLabel(ch rune) (Label, error) {
	switch {
	case ch == '.':
		return 0, nil
	case ch >= '1' && ch <= '9':
		return Label(ch - '0'), nil
	case ch >= 'a' && ch <= 'z':
		return Label(ch-'a') + 10, nil
	case ch >= 'A' && ch <= 'Z':
		return Label(ch-'A') + 36, nil
	default:
		return 0, fmt.Errorf("grid: invalid label glyph %q", ch)
	}
}

// MustParseLabels is ParseLabels that panics on error, for test fixtures.
func MustParseLabels(art string) *Labels {
	l, err := ParseLabels(art)
	if err != nil {
		panic(err)
	}
	return l
}
