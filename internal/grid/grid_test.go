package grid

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewDimensions(t *testing.T) {
	g := New(8, 10)
	if g.Rows() != 8 || g.Cols() != 10 || g.Pixels() != 80 {
		t.Fatalf("got %dx%d (%d px), want 8x10 (80 px)", g.Rows(), g.Cols(), g.Pixels())
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 10; c++ {
			if g.At(r, c) != 0 {
				t.Fatalf("new grid not zeroed at (%d,%d)", r, c)
			}
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {-1, 5}, {5, -2}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestIndexFlattening(t *testing.T) {
	// §4.1: address = row*NCOLS + col.
	g := New(8, 10)
	if got := g.Index(0, 0); got != 0 {
		t.Errorf("Index(0,0) = %d, want 0", got)
	}
	if got := g.Index(1, 0); got != 10 {
		t.Errorf("Index(1,0) = %d, want 10", got)
	}
	if got := g.Index(3, 7); got != 37 {
		t.Errorf("Index(3,7) = %d, want 37", got)
	}
	if got := g.Index(7, 9); got != 79 {
		t.Errorf("Index(7,9) = %d, want 79", got)
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	g := New(4, 3)
	g.Set(2, 1, 42)
	if got := g.At(2, 1); got != 42 {
		t.Fatalf("At(2,1) = %d, want 42", got)
	}
	if got := g.AtFlat(g.Index(2, 1)); got != 42 {
		t.Fatalf("AtFlat = %d, want 42", got)
	}
	if !g.Lit(2, 1) || g.Lit(0, 0) {
		t.Fatal("Lit misreports")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	g := New(2, 2)
	for _, rc := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", rc[0], rc[1])
				}
			}()
			g.At(rc[0], rc[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	g, err := FromRows([][]Value{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows() != 2 || g.Cols() != 3 {
		t.Fatalf("got %dx%d, want 2x3", g.Rows(), g.Cols())
	}
	if g.At(1, 2) != 6 || g.At(0, 0) != 1 {
		t.Fatal("values misplaced")
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := FromRows([][]Value{{1, 2}, {3}}); err == nil {
		t.Error("ragged input: want error")
	}
}

func TestFromFlat(t *testing.T) {
	data := []Value{1, 0, 0, 2}
	g, err := FromFlat(2, 2, data)
	if err != nil {
		t.Fatal(err)
	}
	if g.At(1, 1) != 2 {
		t.Fatal("FromFlat misplaced values")
	}
	// Zero-copy: mutating source mutates grid.
	data[0] = 9
	if g.At(0, 0) != 9 {
		t.Fatal("FromFlat should not copy")
	}
	if _, err := FromFlat(2, 2, []Value{1}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := FromFlat(0, 2, nil); err == nil {
		t.Error("zero rows: want error")
	}
}

func TestParseAndString(t *testing.T) {
	art := `
		.#.
		##.
		..#
	`
	g := MustParse(art)
	if g.Rows() != 3 || g.Cols() != 3 {
		t.Fatalf("got %dx%d, want 3x3", g.Rows(), g.Cols())
	}
	want := ".#.\n##.\n..#"
	if g.String() != want {
		t.Fatalf("String() = %q, want %q", g.String(), want)
	}
	if g.LitCount() != 4 {
		t.Fatalf("LitCount = %d, want 4", g.LitCount())
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(""); err == nil {
		t.Error("empty art: want error")
	}
	if _, err := Parse(".#\n#"); err == nil {
		t.Error("ragged art: want error")
	}
}

func TestThreshold(t *testing.T) {
	g, _ := FromRows([][]Value{{5, 10, 3}})
	th := g.Threshold(5)
	if th.At(0, 0) != 5 || th.At(0, 1) != 10 || th.At(0, 2) != 0 {
		t.Fatalf("Threshold wrong: %v", th.Flat())
	}
	if g.At(0, 2) != 3 {
		t.Fatal("Threshold must not mutate the receiver")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := MustParse("##\n..")
	c := g.Clone()
	c.Set(0, 0, 0)
	if !g.Lit(0, 0) {
		t.Fatal("Clone shares storage with original")
	}
	if g.Equal(c) {
		t.Fatal("Equal should detect the difference")
	}
	if !g.Equal(g.Clone()) {
		t.Fatal("grid must equal its clone")
	}
}

func TestOccupancy(t *testing.T) {
	g := MustParse("#.\n..")
	if got := g.Occupancy(); got != 0.25 {
		t.Fatalf("Occupancy = %v, want 0.25", got)
	}
}

func TestConnectivityString(t *testing.T) {
	if FourWay.String() != "4-way" || EightWay.String() != "8-way" {
		t.Fatal("connectivity names wrong")
	}
	if !strings.Contains(Connectivity(3).String(), "3") {
		t.Fatal("invalid connectivity should print its value")
	}
	if Connectivity(3).Valid() || !FourWay.Valid() || !EightWay.Valid() {
		t.Fatal("Valid misreports")
	}
}

func TestNeighborCounts(t *testing.T) {
	if n := len(FourWay.Neighbors()); n != 4 {
		t.Errorf("4-way neighbors = %d, want 4", n)
	}
	if n := len(EightWay.Neighbors()); n != 8 {
		t.Errorf("8-way neighbors = %d, want 8", n)
	}
	if n := len(FourWay.ScanNeighbors()); n != 2 {
		t.Errorf("4-way scan neighbors = %d, want 2 (top, left)", n)
	}
	if n := len(EightWay.ScanNeighbors()); n != 4 {
		t.Errorf("8-way scan neighbors = %d, want 4 (+top-left, top-right)", n)
	}
}

func TestScanNeighborsAreAboveOrLeft(t *testing.T) {
	// Every scanned neighbor must precede the pixel in raster order.
	for _, c := range []Connectivity{FourWay, EightWay} {
		for _, o := range c.ScanNeighbors() {
			if o.DR > 0 || (o.DR == 0 && o.DC >= 0) {
				t.Errorf("%v scan neighbor %+v does not precede in raster order", c, o)
			}
		}
	}
}

func TestScanNeighborsSubsetOfNeighbors(t *testing.T) {
	for _, c := range []Connectivity{FourWay, EightWay} {
		all := make(map[Offset]bool)
		for _, o := range c.Neighbors() {
			all[o] = true
		}
		for _, o := range c.ScanNeighbors() {
			// Top-right (-1,+1) is consulted by the paper's 8-way scan and is
			// a legitimate 8-way neighbor.
			if !all[o] {
				t.Errorf("%v scan neighbor %+v not in full neighbor set", c, o)
			}
		}
	}
}

func TestLabelsBasics(t *testing.T) {
	l := NewLabels(2, 3)
	l.Set(0, 1, 4)
	l.Set(1, 2, 4)
	l.Set(1, 0, 7)
	if l.Count() != 2 {
		t.Fatalf("Count = %d, want 2", l.Count())
	}
	d := l.Distinct()
	if len(d) != 2 || d[0] != 4 || d[1] != 7 {
		t.Fatalf("Distinct = %v, want [4 7]", d)
	}
}

func TestLabelsCompact(t *testing.T) {
	l := NewLabels(1, 4)
	l.SetFlat(0, 9)
	l.SetFlat(2, 4)
	l.SetFlat(3, 9)
	k := l.Compact()
	if k != 2 {
		t.Fatalf("Compact = %d, want 2", k)
	}
	want := []Label{1, 0, 2, 1}
	for i, w := range want {
		if l.AtFlat(i) != w {
			t.Fatalf("after Compact labels = %v, want %v", l.Flat(), want)
		}
	}
}

func TestIsomorphic(t *testing.T) {
	a := MustParseLabels("112\n.22")
	b := MustParseLabels("775\n.55")
	if !a.Isomorphic(b) {
		t.Fatal("renamed labels should be isomorphic")
	}
	c := MustParseLabels("111\n.11") // merges the two components
	if a.Isomorphic(c) {
		t.Fatal("different partitions must not be isomorphic")
	}
	d := MustParseLabels("11.\n.22") // different background
	if a.Isomorphic(d) {
		t.Fatal("different background must not be isomorphic")
	}
	e := MustParseLabels("122\n.22") // splits a component
	if a.Isomorphic(e) {
		t.Fatal("split component must not be isomorphic")
	}
	// Non-injective mapping in the other direction: a maps 1->7,2->5 fine,
	// but f maps two labels onto one of a's.
	f := MustParseLabels("112\n.21")
	if f.Isomorphic(a) {
		t.Fatal("non-bijective mapping must fail")
	}
}

func TestIsomorphicDimensionMismatch(t *testing.T) {
	a := NewLabels(2, 2)
	b := NewLabels(2, 3)
	if a.Isomorphic(b) || a.Equal(b) {
		t.Fatal("dimension mismatch must not compare equal/isomorphic")
	}
}

func TestLabelsStringRoundTrip(t *testing.T) {
	l := MustParseLabels("1.2\na.Z")
	got, err := ParseLabels(l.String())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(l) {
		t.Fatalf("round trip failed:\n%s\nvs\n%s", l, got)
	}
	if l.At(1, 0) != 10 || l.At(1, 2) != 61 {
		t.Fatal("glyph decoding wrong for a/Z")
	}
}

func TestParseLabelsErrors(t *testing.T) {
	if _, err := ParseLabels(""); err == nil {
		t.Error("empty: want error")
	}
	if _, err := ParseLabels("1!\n11"); err == nil {
		t.Error("bad glyph: want error")
	}
	if _, err := ParseLabels("11\n1"); err == nil {
		t.Error("ragged: want error")
	}
}

func TestLabelGlyphOverflow(t *testing.T) {
	l := NewLabels(1, 1)
	l.SetFlat(0, 100)
	if l.String() != "*" {
		t.Fatalf("label 100 glyph = %q, want *", l.String())
	}
}

// Property: Compact is idempotent and preserves the partition.
func TestCompactIdempotentProperty(t *testing.T) {
	f := func(seedRows [6][7]uint8) bool {
		l := NewLabels(6, 7)
		for r := 0; r < 6; r++ {
			for c := 0; c < 7; c++ {
				l.Set(r, c, Label(seedRows[r][c]%5)) // labels 0..4
			}
		}
		orig := l.Clone()
		k1 := l.Compact()
		if !l.Isomorphic(orig) {
			return false
		}
		second := l.Clone()
		k2 := second.Compact()
		return k1 == k2 && second.Equal(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: String/Parse round-trips the lit mask.
func TestGridStringParseRoundTripProperty(t *testing.T) {
	f := func(cells [5][5]bool) bool {
		g := New(5, 5)
		for r := 0; r < 5; r++ {
			for c := 0; c < 5; c++ {
				if cells[r][c] {
					g.Set(r, c, 1)
				}
			}
		}
		back, err := Parse(g.String())
		if err != nil {
			return false
		}
		return back.Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
