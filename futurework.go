package hepccl

import (
	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/design"
)

// Public surface for the §6 future-work extensions this reproduction
// implements: alternative pass structures, the widened output interface,
// and tiled (hierarchical) labeling.

type (
	// VariantConfig configures a future-work design variant.
	VariantConfig = design.VariantConfig
	// PassStrategy selects the pass structure of a variant.
	PassStrategy = design.PassStrategy
	// TiledOptions configures hierarchical labeling.
	TiledOptions = ccl.TiledOptions
	// TiledResult is the output of hierarchical labeling.
	TiledResult = ccl.TiledResult
)

// Pass strategies.
const (
	// PassOneAndHalf is the paper's published 1.5-pass design.
	PassOneAndHalf = design.PassOneAndHalf
	// PassTwo adds a full relabeling raster pass.
	PassTwo = design.PassTwo
	// PassSingle resolves on the fly with a flat representative table.
	PassSingle = design.PassSingle
)

// RunVariant executes a future-work design variant on an event image.
func RunVariant(g *Grid, cfg VariantConfig) (*DesignOutput, error) {
	return design.RunVariant(g, cfg)
}

// VariantLatency returns a variant's modeled worst-case latency in cycles.
func VariantLatency(cfg VariantConfig) int64 { return design.VariantLatency(cfg) }

// LabelTiled runs hierarchical CCL: independent tiles with bounded merge
// tables, then a boundary-union pass.
func LabelTiled(g *Grid, opt TiledOptions) (*TiledResult, error) {
	return ccl.LabelTiled(g, opt)
}

// Station-level reconstruction and hardware centroiding surface.

type (
	// Instrument is one two-layer (X/Y) tracker station.
	Instrument = adapt.Instrument
	// StationEvent is the station event builder's output.
	StationEvent = adapt.StationEvent
	// Point2D is one reconstructed 2D interaction point.
	Point2D = adapt.Point2D
	// CentroidOutput is the streaming hardware centroid stage's result.
	CentroidOutput = design.CentroidOutput
	// CentroidFx is one fixed-point hardware centroid.
	CentroidFx = design.CentroidFx
	// TriggerConfig parameterizes a Poisson trigger-load simulation.
	TriggerConfig = adapt.TriggerConfig
	// DeadtimeResult summarizes a trigger-load simulation.
	DeadtimeResult = adapt.DeadtimeResult
)

// NewInstrument builds a two-layer station from a 1D pipeline configuration.
func NewInstrument(cfg PipelineConfig) (*Instrument, error) { return adapt.NewInstrument(cfg) }

// RunCentroid2D executes the streaming hardware centroid stage over a
// labeled image.
func RunCentroid2D(g *Grid, labels *Labels, maxLabels int) (*CentroidOutput, error) {
	return design.RunCentroid2D(g, labels, maxLabels)
}
