package hepccl_test

import (
	"testing"

	hepccl "github.com/wustl-adapt/hepccl"
)

// The facade test exercises the README quickstart path end to end through
// the public API only.
func TestQuickstartPath(t *testing.T) {
	g := hepccl.MustParseGrid(`
		##..#
		#...#
		...##
	`)
	res, err := hepccl.Label(g, hepccl.Options{Connectivity: hepccl.FourWay})
	if err != nil {
		t.Fatal(err)
	}
	if res.Islands != 2 {
		t.Fatalf("islands = %d, want 2", res.Islands)
	}
	islands := hepccl.IslandsOf(g, res.Labels)
	if len(islands) != 2 {
		t.Fatalf("extracted = %d, want 2", len(islands))
	}
	big := hepccl.LargestIsland(islands)
	if big == nil || big.Size() != 4 {
		t.Fatalf("largest island = %+v", big)
	}
	cs := hepccl.Centroids(islands)
	if len(cs) != 2 {
		t.Fatal("centroids missing")
	}
	h := hepccl.HillasOf(*big)
	if h.Size != big.Sum {
		t.Fatal("hillas size mismatch")
	}
}

func TestDesignFacade(t *testing.T) {
	g := hepccl.NewGrid(8, 10)
	g.Set(2, 3, 7)
	g.Set(2, 4, 9)
	out, err := hepccl.RunDesign(g, hepccl.DesignConfig{
		Rows: 8, Cols: 10,
		Connectivity: hepccl.FourWay,
		Stage:        hepccl.StagePipelined,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Report.LatencyCycles != 340 {
		t.Fatalf("latency = %d, want 340 (Table 1)", out.Report.LatencyCycles)
	}
	if out.Islands != 1 {
		t.Fatalf("islands = %d, want 1", out.Islands)
	}
	if hepccl.DesignLatency(hepccl.StageBaseline, hepccl.FourWay, 8, 10) != 998 {
		t.Fatal("baseline latency facade broken")
	}
	if len(hepccl.Stages()) != 4 {
		t.Fatal("stages facade broken")
	}
	if hepccl.KintexXC7K325T.FF != 407600 {
		t.Fatal("device facade broken")
	}
}

func TestModeConstantsExposed(t *testing.T) {
	g := hepccl.MustParseGrid("#..#.\n#.##.\n###..")
	paper, err := hepccl.Label(g, hepccl.Options{Mode: hepccl.ModePaper})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := hepccl.Label(g, hepccl.Options{Mode: hepccl.ModeFixed})
	if err != nil {
		t.Fatal(err)
	}
	if paper.Islands != 2 || fixed.Islands != 1 {
		t.Fatalf("corner case through facade: %d/%d, want 2/1", paper.Islands, fixed.Islands)
	}
}

func TestPipelineFacade(t *testing.T) {
	p, err := hepccl.NewPipeline(hepccl.ADAPTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if eps := p.EventsPerSecond(); eps < 280e3 || eps > 320e3 {
		t.Fatalf("ADAPT events/s = %v", eps)
	}
	cta, err := hepccl.NewPipeline(hepccl.CTAConfig())
	if err != nil {
		t.Fatal(err)
	}
	if eps := cta.EventsPerSecond(); eps < 15000 {
		t.Fatalf("CTA events/s = %v", eps)
	}
}

func TestLabelersFacade(t *testing.T) {
	g := hepccl.MustParseGrid("#.#")
	for _, lab := range hepccl.Labelers() {
		l, err := lab.Label(g, hepccl.EightWay)
		if err != nil {
			t.Fatalf("%s: %v", lab.Name(), err)
		}
		if l.Count() != 2 {
			t.Fatalf("%s: count = %d", lab.Name(), l.Count())
		}
	}
}

func TestMergeTableSizing(t *testing.T) {
	if hepccl.MergeTableSizePaper(43, 43) != 484 {
		t.Fatal("paper sizing wrong")
	}
	if hepccl.MergeTableSize(8, 10, hepccl.FourWay) != 40 {
		t.Fatal("safe sizing wrong")
	}
	if hepccl.MergeTableSize(8, 10, hepccl.EightWay) != 20 {
		t.Fatal("8-way sizing wrong")
	}
}

func TestGridFromFlat(t *testing.T) {
	g, err := hepccl.GridFromFlat(1, 3, []hepccl.Value{1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.LitCount() != 2 {
		t.Fatal("flat grid wrong")
	}
	if hepccl.NewRNG(7).Uint64() != hepccl.NewRNG(7).Uint64() {
		t.Fatal("rng facade not deterministic")
	}
}

func TestFutureWorkFacade(t *testing.T) {
	g := hepccl.MustParseGrid("#..#.\n#.##.\n###..")
	out, err := hepccl.RunVariant(g, hepccl.VariantConfig{
		Rows: 3, Cols: 5, Connectivity: hepccl.FourWay, Strategy: hepccl.PassSingle,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Islands != 1 {
		t.Fatalf("single-pass variant islands = %d, want 1 (corner-case immune)", out.Islands)
	}
	if hepccl.VariantLatency(hepccl.VariantConfig{
		Rows: 8, Cols: 10, Connectivity: hepccl.FourWay, Strategy: hepccl.PassOneAndHalf,
	}) != 340 {
		t.Fatal("1.5-pass variant latency must match Table 1")
	}
	big := hepccl.Spiral(32, 32)
	res, err := hepccl.LabelTiled(big, hepccl.TiledOptions{TileRows: 8, TileCols: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Islands != 1 {
		t.Fatalf("tiled spiral islands = %d, want 1", res.Islands)
	}
	if _, err := hepccl.RunVariant(g, hepccl.VariantConfig{
		Rows: 3, Cols: 5, Connectivity: hepccl.FourWay, Strategy: hepccl.PassTwo,
	}); err != nil {
		t.Fatal(err)
	}
}
