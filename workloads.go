package hepccl

import (
	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/detector"
)

// Workload-generation surface: the synthetic instrument front end this
// reproduction substitutes for real detector electronics and event data.

type (
	// Camera parameterizes an IACT-style 2D sensor array.
	Camera = detector.CameraConfig
	// Shower parameterizes one Cherenkov-shower-like image.
	Shower = detector.ShowerConfig
	// Tracker parameterizes an ADAPT-style 1D fiber-tracker layer.
	Tracker = detector.TrackerConfig
	// Event1D is one generated 1D event with its ground truth.
	Event1D = detector.Event1D
	// Digitizer models one waveform-digitizer channel.
	Digitizer = detector.DigitizerConfig
	// EventRecord is the downlink record of one processed event.
	EventRecord = adapt.EventRecord
)

// LSTCamera approximates CTA's Large-Sized Telescope camera (43×43, §5.5).
func LSTCamera() Camera { return detector.LSTCamera() }

// DefaultTracker returns the synthetic ADAPT tracker configuration
// (320 channels over 20 ALPHA ASICs).
func DefaultTracker() Tracker { return detector.DefaultTracker() }

// DefaultDigitizer returns the synthetic front-end digitizer configuration.
func DefaultDigitizer() Digitizer { return detector.DefaultDigitizer() }

// RandomIslands scatters blob-shaped islands across a grid.
func RandomIslands(rows, cols, count int, radius float64, rng *RNG) *Grid {
	return detector.RandomIslands(rows, cols, count, radius, rng)
}

// RandomOccupancy lights pixels independently with probability p.
func RandomOccupancy(rows, cols int, p float64, rng *RNG) *Grid {
	return detector.RandomOccupancy(rows, cols, p, rng)
}

// Checkerboard returns the 4-way worst-case provisional-label pattern.
func Checkerboard(rows, cols int) *Grid { return detector.Checkerboard(rows, cols) }

// Spiral returns a maximally-concave single component (merge-chain stress).
func Spiral(rows, cols int) *Grid { return detector.Spiral(rows, cols) }

// GenerateEvent digitizes a true photo-electron image into ALPHA packets.
func GenerateEvent(pe []Value, asics int, event uint32, timestamp uint64,
	dig Digitizer, rng *RNG) ([]Packet, error) {
	return adapt.GenerateEvent(pe, asics, event, timestamp, dig, rng)
}

// GeneratePedestalEvents builds light-free calibration events.
func GeneratePedestalEvents(n, asics int, dig Digitizer, rng *RNG) ([][]Packet, error) {
	return adapt.GeneratePedestalEvents(n, asics, dig, rng)
}

// RecordOf packs a pipeline result into its downlink record.
func RecordOf(res *EventResult) EventRecord { return adapt.RecordOf(res) }

// MuonRingConfig parameterizes one muon-ring image — the thin concave
// calibration workload that stresses transitive merge chains (E13).
type MuonRingConfig = detector.MuonRing
